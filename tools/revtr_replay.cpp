// revtr_replay — traffic replayer for revtr_serverd (the tentpole load
// harness). Drives the daemon with an open- or closed-loop arrival process
// over a Zipf destination popularity distribution, at up to million-request
// scale, and records accept/shed/deadline-miss rates plus client-observed
// p50/p99/p999 wall latency into BENCH_serverd.json.
//
//   revtr_replay [--socket=PATH] [--requests=N] [--conns=K]
//                [--mode=closed|open] [--inflight=N] [--rate=R]
//                [--zipf=S] [--deadline-ms=N] [--seed=N] [--key=S]
//                [--bench-name=S] [--metrics-out=FILE] [--agents=N]
//                [in-process daemon: --workers --ases --vps --probes
//                 --sources --atlas --queue-cap --tenant-rate --tenant-burst]
//
// With --socket the replayer targets an already-running daemon; without it,
// it hosts a ServerDaemon in-process (caches and atlas stay hot across the
// whole run) and can dump that daemon's Prometheus metrics via
// --metrics-out.
//
// --agents=N (in-process only) benches the distributed deployment: the
// hosted daemon runs with --remote-probing and N AgentDaemon threads join
// as VP agents, so every wire probe crosses the framed protocol. The
// artifact records the agent count and defaults to the serverd_agents
// bench name, keeping the monolith baseline separate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "agent/agent.h"
#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/daemon.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"

using namespace revtr;

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Zipf(s) popularity over `n` destinations: CDF table sampled by binary
// search, so a million draws cost one uniform + log2(n) compares each.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
      cdf_[rank] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint32_t sample(util::Rng& rng) const {
    const double r = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    const auto rank = static_cast<std::size_t>(it - cdf_.begin());
    return static_cast<std::uint32_t>(std::min(rank, cdf_.size() - 1));
  }

 private:
  std::vector<double> cdf_;
};

// What one connection thread observed; summed after the join.
struct ConnTotals {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  // Measured results received.
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  bool transport_error = false;
};

struct ReplayConfig {
  std::string socket_path;
  std::string api_key;
  std::uint64_t requests = 0;  // Total across all connections.
  std::size_t conns = 1;
  bool open_loop = false;
  std::size_t inflight = 8;    // Closed loop: outstanding per connection.
  double rate_per_conn = 0;    // Open loop: arrivals/sec per connection.
  std::int64_t deadline_budget_us = 0;  // 0 = no deadline.
  std::uint64_t seed = 7;
};

// One connection thread: HELLO, then replay its share of the request
// stream, recording client-observed wall latency per measured result.
void run_conn(const ReplayConfig& config, std::size_t conn_index,
              std::uint64_t quota, const ZipfSampler& zipf,
              obs::Histogram* wall_us, ConnTotals* totals) {
  util::Rng rng(util::mix_hash(config.seed, conn_index, 0x4e71ULL));
  server::DaemonClient client;
  if (!client.connect(config.socket_path)) {
    totals->transport_error = true;
    return;
  }
  const auto welcome = client.hello(config.api_key, /*push_results=*/true);
  if (!welcome.has_value()) {
    totals->transport_error = true;
    return;
  }
  // SUBMIT deadlines are absolute on the server's clock: anchor its HELLO
  // timestamp to ours once and extrapolate.
  const std::int64_t local_t0 = steady_now_us();
  const std::int64_t server_t0 = welcome->server_now_us;

  std::unordered_map<std::uint64_t, std::int64_t> submit_time;
  submit_time.reserve(config.inflight * 2);
  std::uint64_t next_seq = 0;
  std::uint64_t outstanding = 0;

  const auto consume = [&](const server::Result& result) {
    --outstanding;
    const auto it = submit_time.find(result.request_id);
    if (it != submit_time.end()) {
      const std::int64_t wall = steady_now_us() - it->second;
      wall_us->record(static_cast<std::uint64_t>(std::max<std::int64_t>(
          wall, 0)));
      submit_time.erase(it);
    }
    if (result.shed) {
      ++totals->shed;
    } else {
      ++totals->completed;
      if (result.deadline_missed) ++totals->deadline_missed;
    }
  };

  const auto submit_one = [&]() -> bool {
    server::Submit request;
    request.request_id =
        (static_cast<std::uint64_t>(conn_index) << 48) | next_seq++;
    request.dest_index = zipf.sample(rng);
    request.source_index = 0;
    const double p = rng.uniform();
    request.priority = p < 0.1   ? server::Priority::kHigh
                       : p < 0.8 ? server::Priority::kNormal
                                 : server::Priority::kLow;
    const std::int64_t now = steady_now_us();
    if (config.deadline_budget_us > 0) {
      request.deadline_us =
          server_t0 + (now - local_t0) + config.deadline_budget_us;
    }
    ++totals->submitted;
    if (client.submit(request)) {
      ++totals->accepted;
      ++outstanding;
      submit_time.emplace(request.request_id, now);
      return true;
    }
    if (!client.reject_reason().has_value()) {
      totals->transport_error = true;
      return false;
    }
    ++totals->rejected;
    return true;
  };

  if (config.open_loop) {
    // Open loop: arrivals fire on schedule whether or not earlier requests
    // finished; results are consumed opportunistically (the client stashes
    // any that interleave with SUBMIT acks).
    const double mean_gap_us =
        config.rate_per_conn > 0 ? 1e6 / config.rate_per_conn : 0;
    std::int64_t next_arrival = steady_now_us();
    while (totals->submitted < quota) {
      if (mean_gap_us > 0) {
        next_arrival += static_cast<std::int64_t>(
            rng.exponential(mean_gap_us));
        const std::int64_t wait = next_arrival - steady_now_us();
        if (wait > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(wait));
        }
      }
      if (!submit_one()) return;
      while (client.stashed_results() > 0) {
        auto result = client.next_result();
        if (!result.has_value()) {
          totals->transport_error = true;
          return;
        }
        consume(*result);
      }
    }
  } else {
    // Closed loop: a fixed window of outstanding requests per connection;
    // every completion immediately funds the next submission.
    while (totals->submitted < quota || outstanding > 0) {
      while (outstanding < config.inflight && totals->submitted < quota) {
        if (!submit_one()) return;
      }
      if (outstanding == 0) continue;  // Everything rejected; keep going.
      auto result = client.next_result();
      if (!result.has_value()) {
        totals->transport_error = true;
        return;
      }
      consume(*result);
    }
    return;
  }
  // Open loop tail: collect what is still in flight.
  while (outstanding > 0) {
    auto result = client.next_result();
    if (!result.has_value()) {
      totals->transport_error = true;
      return;
    }
    consume(*result);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  ReplayConfig config;
  config.socket_path = flags.get_string("socket", "");
  config.api_key = flags.get_string("key", "demo-key");
  config.requests =
      static_cast<std::uint64_t>(flags.get_int("requests", 10000));
  config.conns = static_cast<std::size_t>(flags.get_int("conns", 4));
  if (config.conns == 0) config.conns = 1;
  const std::string mode = flags.get_string("mode", "closed");
  config.open_loop = mode == "open";
  if (!config.open_loop && mode != "closed") {
    std::fprintf(stderr, "bad --mode: %s (closed|open)\n", mode.c_str());
    return 2;
  }
  config.inflight =
      static_cast<std::size_t>(flags.get_int("inflight", 8));
  config.rate_per_conn = flags.get_double("rate", 2000.0) /
                         static_cast<double>(config.conns);
  config.deadline_budget_us = flags.get_int("deadline-ms", 30000) * 1000;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  const auto num_dests =
      static_cast<std::size_t>(flags.get_int("probes", 150));
  const ZipfSampler zipf(num_dests, flags.get_double("zipf", 1.1));

  const auto num_agents =
      static_cast<std::size_t>(flags.get_int("agents", 0));

  // No --socket: host the daemon in this process so one binary carries the
  // whole bench (and the check.sh smoke needs no process juggling).
  std::unique_ptr<server::ServerDaemon> daemon;
  const bool in_process = config.socket_path.empty();
  if (!in_process && num_agents > 0) {
    std::fprintf(stderr,
                 "--agents needs the in-process daemon (drop --socket)\n");
    return 2;
  }
  std::vector<std::unique_ptr<agent::AgentDaemon>> agents;
  std::vector<std::thread> agent_threads;
  if (in_process) {
    server::ServerOptions options;
    options.socket_path = flags.get_string(
        "daemon-socket", "/tmp/revtr_replay_daemon.sock");
    options.topo.seed = config.seed;
    options.topo.num_ases =
        static_cast<std::size_t>(flags.get_int("ases", 400));
    options.topo.num_vps =
        static_cast<std::size_t>(flags.get_int("vps", 20));
    options.topo.num_probe_hosts = num_dests;
    options.seed = config.seed;
    options.workers =
        static_cast<std::size_t>(flags.get_int("workers", 2));
    options.sources =
        static_cast<std::size_t>(flags.get_int("sources", 1));
    options.atlas_size =
        static_cast<std::size_t>(flags.get_int("atlas", 50));
    options.admission.queue_capacity =
        static_cast<std::size_t>(flags.get_int("queue-cap", 4096));
    options.admission.workers = options.workers;
    server::TenantConfig tenant;
    tenant.api_key = config.api_key;
    // The replayer studies scheduling and shedding, not quota policy:
    // provision the tenant so neither daily cap binds unless asked to.
    tenant.limits.daily_limit = static_cast<std::size_t>(
        flags.get_int("daily-limit", 1 << 30));
    tenant.limits.daily_probe_budget = static_cast<std::uint64_t>(
        flags.get_int("probe-budget", 1LL << 50));
    tenant.bucket.rate_per_sec = flags.get_double("tenant-rate", 1e9);
    tenant.bucket.burst = flags.get_double("tenant-burst", 1e9);
    options.tenants.push_back(tenant);
    options.remote_probing = num_agents > 0;
    daemon = std::make_unique<server::ServerDaemon>(options);
    if (!daemon->start()) {
      std::fprintf(stderr, "revtr_replay: daemon start failed\n");
      return 1;
    }
    config.socket_path = options.socket_path;
    // Distributed bench: N VP agents join over the same socket and execute
    // every wire probe; the daemon's workers only plan and dispatch.
    for (std::size_t a = 0; a < num_agents; ++a) {
      agent::AgentOptions agent_options;
      agent_options.socket_path = options.socket_path;
      agent_options.name = "replay-agent-" + std::to_string(a);
      agent_options.topo = options.topo;
      agent_options.seed = options.seed;
      agents.push_back(
          std::make_unique<agent::AgentDaemon>(agent_options));
      agent_threads.emplace_back(
          [raw = agents.back().get()] { raw->run(); });
    }
  }

  std::printf("replay: %llu requests over %zu conns, %s loop%s%s\n",
              static_cast<unsigned long long>(config.requests), config.conns,
              config.open_loop ? "open" : "closed",
              in_process ? " (in-process daemon)" : "",
              num_agents > 0 ? ", remote probing" : "");
  std::fflush(stdout);

  // Client-observed wall latency, shared across connection threads (the
  // histogram's cells are sharded atomics).
  obs::MetricsRegistry replay_registry;
  obs::Histogram& wall_us = replay_registry.histogram("replay_wall_us");

  std::vector<ConnTotals> totals(config.conns);
  std::vector<std::thread> threads;
  const std::int64_t t0 = steady_now_us();
  for (std::size_t c = 0; c < config.conns; ++c) {
    const std::uint64_t quota = config.requests / config.conns +
                                (c < config.requests % config.conns ? 1 : 0);
    threads.emplace_back(run_conn, std::cref(config), c, quota,
                         std::cref(zipf), &wall_us, &totals[c]);
  }
  for (auto& thread : threads) thread.join();
  const double wall_seconds =
      static_cast<double>(steady_now_us() - t0) / 1e6;

  ConnTotals sum;
  bool transport_error = false;
  for (const ConnTotals& t : totals) {
    sum.submitted += t.submitted;
    sum.accepted += t.accepted;
    sum.rejected += t.rejected;
    sum.completed += t.completed;
    sum.shed += t.shed;
    sum.deadline_missed += t.deadline_missed;
    transport_error = transport_error || t.transport_error;
  }

  // Drain through a control connection so the daemon finishes everything
  // before we read its stats (and, in-process, before we dump metrics).
  std::string server_stats = "{}";
  {
    server::DaemonClient control;
    if (control.connect(config.socket_path) &&
        control.hello(config.api_key).has_value()) {
      if (auto stats = control.stats(); stats.has_value()) {
        server_stats = *stats;
      }
      control.drain();
    }
  }
  // The drain above made the daemon send AGENT_DRAIN to every agent; they
  // answer and exit their run loops, so the joins below cannot hang.
  for (auto& thread : agent_threads) thread.join();

  const auto snapshot = replay_registry.snapshot();
  const auto* wall = snapshot.find_histogram("replay_wall_us");
  const double p50 = wall != nullptr ? obs::histogram_quantile(*wall, 0.5) : 0;
  const double p99 =
      wall != nullptr ? obs::histogram_quantile(*wall, 0.99) : 0;
  const double p999 =
      wall != nullptr ? obs::histogram_quantile(*wall, 0.999) : 0;
  const double denom =
      sum.submitted > 0 ? static_cast<double>(sum.submitted) : 1;

  util::Json payload = util::Json::object();
  payload["requests"] = sum.submitted;
  payload["accepted"] = sum.accepted;
  payload["rejected"] = sum.rejected;
  payload["completed"] = sum.completed;
  payload["shed"] = sum.shed;
  payload["deadline_missed"] = sum.deadline_missed;
  payload["accept_rate"] = static_cast<double>(sum.accepted) / denom;
  payload["shed_rate"] = static_cast<double>(sum.shed) / denom;
  payload["deadline_miss_rate"] =
      static_cast<double>(sum.deadline_missed) / denom;
  payload["wall_p50_us"] = p50;
  payload["wall_p99_us"] = p99;
  payload["wall_p999_us"] = p999;
  payload["replay_wall_seconds"] = wall_seconds;
  payload["replay_requests_per_second"] =
      wall_seconds > 0 ? static_cast<double>(sum.completed + sum.shed) /
                             wall_seconds
                       : 0.0;
  payload["conns"] = static_cast<std::uint64_t>(config.conns);
  payload["mode"] = std::string(config.open_loop ? "open" : "closed");
  payload["agents"] = static_cast<std::uint64_t>(num_agents);
  if (num_agents > 0) {
    std::uint64_t agent_probes = 0;
    for (const auto& a : agents) agent_probes += a->counters().executed;
    payload["agent_probes_executed"] = agent_probes;
  }
  payload["peak_rss_bytes"] = bench::peak_rss_bytes();
  if (auto parsed = util::Json::parse(server_stats); parsed.has_value()) {
    payload["server"] = *parsed;
  }
  bench::write_bench_artifact(
      flags.get_string("bench-name",
                       num_agents > 0 ? "serverd_agents" : "serverd"),
      payload);

  std::printf(
      "replay: %llu submitted, %llu accepted, %llu rejected; "
      "%llu completed, %llu shed, %llu deadline-missed in %.2f s\n",
      static_cast<unsigned long long>(sum.submitted),
      static_cast<unsigned long long>(sum.accepted),
      static_cast<unsigned long long>(sum.rejected),
      static_cast<unsigned long long>(sum.completed),
      static_cast<unsigned long long>(sum.shed),
      static_cast<unsigned long long>(sum.deadline_missed), wall_seconds);
  std::printf("latency: p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n", p50, p99,
              p999);

  if (in_process) {
    const std::string metrics_path = flags.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f != nullptr) {
        const std::string text =
            daemon->registry().snapshot().to_prometheus();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("daemon metrics written to %s\n", metrics_path.c_str());
      }
    }
    daemon->stop();
  }
  if (transport_error) {
    std::fprintf(stderr, "replay: transport error on some connection\n");
    return 1;
  }
  // Accounting must balance: every accepted request came back exactly once.
  if (sum.completed + sum.shed != sum.accepted) {
    std::fprintf(stderr, "replay: lost results (%llu accepted, %llu back)\n",
                 static_cast<unsigned long long>(sum.accepted),
                 static_cast<unsigned long long>(sum.completed + sum.shed));
    return 1;
  }
  return 0;
}
