#include <gtest/gtest.h>
#include <memory>

#include "alias/alias.h"
#include "topology/builder.h"

namespace revtr::alias {
namespace {

using net::Ipv4Addr;
using topology::Topology;
using topology::TopologyBuilder;
using topology::TopologyConfig;

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 41;
  config.num_ases = 100;
  config.num_vps = 6;
  config.num_vps_2016 = 3;
  config.num_probe_hosts = 20;
  return config;
}

class AliasFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config()));
  }
  static void TearDownTestSuite() {
    topo_.reset();
  }
  static std::unique_ptr<Topology> topo_;
};

std::unique_ptr<Topology> AliasFixture::topo_;

TEST(AliasStore, PairAndTransitivity) {
  AliasStore store;
  const Ipv4Addr a(1, 0, 0, 1), b(1, 0, 0, 2), c(1, 0, 0, 3), d(9, 9, 9, 9);
  store.add_pair(a, b);
  store.add_pair(b, c);
  EXPECT_TRUE(store.same_router(a, c));
  EXPECT_TRUE(store.same_router(c, a));
  EXPECT_FALSE(store.same_router(a, d));  // d unknown.
  EXPECT_TRUE(store.same_router(d, d));   // Identity always holds.
  EXPECT_FALSE(store.knows(d));
  EXPECT_EQ(store.known_addresses(), 3u);
}

TEST(AliasStore, SetsMerge) {
  AliasStore store;
  store.add_set({Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2)});
  store.add_set({Ipv4Addr(2, 0, 0, 1), Ipv4Addr(2, 0, 0, 2)});
  EXPECT_FALSE(store.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1)));
  store.add_pair(Ipv4Addr(1, 0, 0, 2), Ipv4Addr(2, 0, 0, 2));
  EXPECT_TRUE(store.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1)));
}

TEST(AliasStore, RepresentativeConsistent) {
  AliasStore store;
  store.add_set({Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2),
                 Ipv4Addr(1, 0, 0, 3)});
  const auto r1 = store.representative(Ipv4Addr(1, 0, 0, 1));
  const auto r2 = store.representative(Ipv4Addr(1, 0, 0, 3));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, *r2);
  EXPECT_FALSE(store.representative(Ipv4Addr(8, 8, 8, 8)));
}

TEST_F(AliasFixture, GroundTruthMatchesTopology) {
  const auto store = ground_truth_aliases(*topo_);
  for (const auto& router : topo_->routers()) {
    const auto addrs = topo_->router_addresses(router.id);
    for (std::size_t i = 1; i < addrs.size(); ++i) {
      EXPECT_TRUE(store.same_router(addrs[0], addrs[i]));
    }
    if (router.id > 50) break;
  }
  // Different routers never collide (sample a few; private aliases may
  // collide by design, so use loopbacks).
  EXPECT_FALSE(store.same_router(topo_->router(0).loopback,
                                 topo_->router(1).loopback));
}

TEST_F(AliasFixture, MidarLikeIsSubsetOfTruth) {
  util::Rng rng(5);
  const auto truth = ground_truth_aliases(*topo_);
  const auto partial = midar_like_aliases(*topo_, rng);
  EXPECT_LT(partial.known_addresses(), truth.known_addresses());
  EXPECT_GT(partial.known_addresses(), 0u);
  // No false positives: everything MIDAR pairs, truth pairs too.
  std::size_t checked = 0;
  for (const auto& router : topo_->routers()) {
    const auto addrs = topo_->router_addresses(router.id);
    for (std::size_t i = 1; i < addrs.size(); ++i) {
      if (partial.same_router(addrs[0], addrs[i])) {
        EXPECT_TRUE(truth.same_router(addrs[0], addrs[i]));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(AliasFixture, MidarSkipsPrivateAddresses) {
  util::Rng rng(5);
  const auto partial = midar_like_aliases(*topo_, rng, 1.0, 1.0);
  for (const auto& router : topo_->routers()) {
    if (!router.private_alias.is_unspecified()) {
      EXPECT_FALSE(partial.knows(router.private_alias));
    }
  }
}

TEST_F(AliasFixture, SnmpIdentifierStablePerRouter) {
  const SnmpResolver snmp(*topo_);
  for (const auto& router : topo_->routers()) {
    const auto addrs = topo_->router_addresses(router.id);
    std::optional<std::uint64_t> expected;
    for (const auto addr : addrs) {
      if (addr.is_private()) continue;
      const auto id = snmp.identifier(addr);
      if (router.snmp_responder) {
        ASSERT_TRUE(id);
        if (expected) {
          EXPECT_EQ(*id, *expected);
        }
        expected = id;
      } else {
        EXPECT_FALSE(id);
      }
    }
  }
}

TEST_F(AliasFixture, SnmpIdentifiersDifferAcrossRouters) {
  const SnmpResolver snmp(*topo_);
  std::optional<std::uint64_t> first;
  for (const auto& router : topo_->routers()) {
    if (!router.snmp_responder) continue;
    const auto id = snmp.identifier(router.loopback);
    ASSERT_TRUE(id);
    if (first) {
      EXPECT_NE(*id, *first);
      break;
    }
    first = id;
  }
}

TEST_F(AliasFixture, SnmpResponsiveAddressesNonEmpty) {
  const SnmpResolver snmp(*topo_);
  const auto addrs = snmp.responsive_addresses();
  EXPECT_GT(addrs.size(), 0u);
  for (const auto addr : addrs) {
    EXPECT_TRUE(snmp.responsive(addr));
    EXPECT_FALSE(addr.is_private());
  }
}

TEST(P2pHeuristic, SubnetMatching) {
  EXPECT_TRUE(same_p2p_subnet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2)));
  EXPECT_FALSE(same_p2p_subnet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 1)));
  EXPECT_FALSE(same_p2p_subnet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 5)));
  // /31 neighbours.
  EXPECT_TRUE(same_p2p_subnet(Ipv4Addr(10, 0, 0, 4), Ipv4Addr(10, 0, 0, 5)));
}

TEST(P2pHeuristic, PartnerInvolution) {
  const Ipv4Addr a(10, 0, 0, 1);
  EXPECT_EQ(p2p_partner(a), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(p2p_partner(p2p_partner(a)), a);
}

TEST_F(AliasFixture, P2pPartnerOfLinkAddressIsLinkPeer) {
  for (const auto& link : topo_->links()) {
    EXPECT_EQ(p2p_partner(link.addr_a), link.addr_b);
    EXPECT_EQ(p2p_partner(link.addr_b), link.addr_a);
    if (link.id > 30) break;
  }
}

}  // namespace
}  // namespace revtr::alias
