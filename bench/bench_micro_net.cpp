// Engineering microbenchmarks (google-benchmark): the hot paths under the
// simulator and the measurement system — wire codec, LPM trie, forwarding
// decisions, full probe round trips, and a complete reverse traceroute.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/revtr.h"
#include "eval/harness.h"
#include "net/wire.h"

using namespace revtr;

namespace {

topology::TopologyConfig micro_config() {
  topology::TopologyConfig config;
  config.seed = 7;
  config.num_ases = 300;
  config.num_vps = 16;
  config.num_probe_hosts = 100;
  return config;
}

eval::Lab& shared_lab() {
  static eval::Lab lab(micro_config());
  return lab;
}

void BM_PacketEncode(benchmark::State& state) {
  net::Packet packet = net::make_echo_request(net::Ipv4Addr(1, 2, 3, 4),
                                              net::Ipv4Addr(5, 6, 7, 8), 1, 1);
  packet.rr = net::RecordRouteOption{};
  for (int i = 0; i < 5; ++i) {
    packet.rr->stamp(net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_packet(packet));
  }
}
BENCHMARK(BM_PacketEncode);

void BM_PacketDecode(benchmark::State& state) {
  net::Packet packet = net::make_echo_request(net::Ipv4Addr(1, 2, 3, 4),
                                              net::Ipv4Addr(5, 6, 7, 8), 1, 1);
  packet.rr = net::RecordRouteOption{};
  for (int i = 0; i < 5; ++i) {
    packet.rr->stamp(net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  const auto bytes = net::encode_packet(packet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_packet(bytes));
  }
}
BENCHMARK(BM_PacketDecode);

void BM_PrefixTrieLookup(benchmark::State& state) {
  auto& lab = shared_lab();
  util::Rng rng(11);
  std::vector<net::Ipv4Addr> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(
        lab.topo
            .host(static_cast<topology::HostId>(
                rng.below(lab.topo.num_hosts())))
            .addr);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lab.topo.prefix_of(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_ForwardingDecision(benchmark::State& state) {
  auto& lab = shared_lab();
  routing::PacketContext ctx;
  const auto vp = lab.topo.vantage_points()[0];
  const auto dest = lab.topo.probe_hosts()[0];
  ctx.src = lab.topo.host(vp).addr;
  ctx.dst = lab.topo.host(dest).addr;
  ctx.flow_key = 42;
  const auto origin = lab.topo.host(vp).attachment;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lab.plane.decide(origin, ctx));
  }
}
BENCHMARK(BM_ForwardingDecision);

void BM_SimulatedPing(benchmark::State& state) {
  auto& lab = shared_lab();
  const auto vp = lab.topo.vantage_points()[0];
  const auto dest = lab.topo.probe_hosts()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lab.prober.ping(vp, lab.topo.host(dest).addr));
  }
}
BENCHMARK(BM_SimulatedPing);

void BM_SimulatedRrPing(benchmark::State& state) {
  auto& lab = shared_lab();
  const auto vp = lab.topo.vantage_points()[0];
  const auto dest = lab.topo.probe_hosts()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lab.prober.rr_ping(vp, lab.topo.host(dest).addr));
  }
}
BENCHMARK(BM_SimulatedRrPing);

void BM_ReverseTraceroute(benchmark::State& state) {
  static eval::Lab lab(micro_config());
  static bool bootstrapped = false;
  const auto source = lab.topo.vantage_points()[0];
  if (!bootstrapped) {
    lab.bootstrap_source(source, 40);
    bootstrapped = true;
  }
  const auto probes = lab.topo.probe_hosts();
  util::SimClock clock;
  std::size_t i = 0;
  for (auto _ : state) {
    lab.engine.clear_caches();
    benchmark::DoNotOptimize(
        lab.engine.measure(probes[i++ % probes.size()], source, clock));
  }
}
BENCHMARK(BM_ReverseTraceroute);

void BM_BgpColumnCompute(benchmark::State& state) {
  auto& lab = shared_lab();
  std::uint32_t epoch = 100;
  for (auto _ : state) {
    state.PauseTiming();
    lab.bgp.set_epoch(++epoch, 0.001);  // Invalidate the cache.
    state.ResumeTiming();
    benchmark::DoNotOptimize(&lab.bgp.column(3));
  }
  state.SetLabel(std::to_string(lab.topo.num_ases()) + " ASes");
}
BENCHMARK(BM_BgpColumnCompute);

// Console output unchanged; every finished run is additionally captured so
// main() can emit the BENCH_micro_net.json artifact run_all.sh and the
// check.sh bench smoke validate.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.error_occurred) continue;
      util::Json row = util::Json::object();
      row["name"] = run.benchmark_name();
      row["iterations"] = static_cast<std::int64_t>(run.iterations);
      row["real_time"] = run.GetAdjustedRealTime();
      row["cpu_time"] = run.GetAdjustedCPUTime();
      row["time_unit"] = benchmark::GetTimeUnitString(run.time_unit);
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  util::Json take_rows() { return std::move(rows_); }
  std::size_t count() const { return rows_.as_array().size(); }

 private:
  util::Json rows_ = util::Json::array();
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  util::Json out = util::Json::object();
  out["benchmark_count"] = static_cast<std::int64_t>(reporter.count());
  out["benchmarks"] = reporter.take_rows();
  out["peak_rss_bytes"] = static_cast<double>(bench::peak_rss_bytes());
  bench::write_bench_artifact("micro_net", out);
  benchmark::Shutdown();
  return 0;
}
