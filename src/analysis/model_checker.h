// Explicit-state model checker over (topology × preset × fault schedule).
//
// Enumerates tiny synthetic topologies (3–8 routers, deterministic seed
// grid), crosses them with the Table 4 config-preset ablation chain and a
// set of fault schedules (spoof loss, rate-limited RR, stale atlas entries,
// filtered VPs), runs the engine on every state, and checks the invariant
// catalog (analysis/invariants.h) plus the differential oracle
// (analysis/oracle.h) on the result. Every state is additionally replayed
// through the staged engine: two identical resumable RequestTasks run over
// one ProbeScheduler with tiny windows, the scheduler audit is checked by
// I7, and (for order-insensitive fault schedules) the staged results must
// match the blocking one byte-for-byte. tools/revtr_mc is the CLI driver;
// the default grid explores >10,000 states in seconds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/invariants.h"
#include "core/revtr.h"
#include "topology/config.h"

namespace revtr::analysis {

// One fault schedule applied to a state: network loss plus targeted
// suppression implemented through the prober's fault policy.
struct FaultSchedule {
  const char* name = "none";
  double loss_rate = 0.0;
  // All spoofed probes vanish (the sender's provider started filtering).
  bool drop_spoofed = false;
  // >0: each target answers at most this many option-carrying probes
  // (ICMP rate limiting of the RR/TS slow path).
  std::uint32_t rr_rate_limit = 0;
  // Age the atlas past the cache TTL before measuring.
  bool stale_atlas = false;
  // >0: every k-th vantage point is filtered (its probes vanish).
  std::uint32_t filtered_vp_stride = 0;
};

std::span<const FaultSchedule> default_fault_schedules();

struct PresetSpec {
  const char* name = "";
  core::EngineConfig config;
};
std::span<const PresetSpec> default_presets();

struct ShapeSpec {
  const char* name = "";
  topology::TopologyConfig config;
};
std::span<const ShapeSpec> default_shapes();

struct CheckerOptions {
  std::size_t max_states = 0;  // 0 = the full grid.
  std::size_t seeds_per_shape = 15;
  std::uint64_t oracle_salts = 8;
  std::size_t max_reported = 20;  // Violation details kept verbatim.
};

struct CheckerSummary {
  std::size_t states = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  std::size_t unreachable = 0;
  std::size_t oracle_pairs = 0;
  std::size_t oracle_permitted = 0;
  // Staged-twin replays (one per state): coalesced counts demands satisfied
  // by another twin's in-flight probe across the whole sweep — evidence I7
  // actually exercised cross-request coalescing, not just empty audits.
  std::size_t staged_twins = 0;
  std::uint64_t staged_coalesced = 0;
  std::size_t total_violations = 0;
  std::array<std::size_t, kNumInvariants> by_invariant{};
  std::vector<std::string> samples;  // First max_reported violation details.

  bool ok() const noexcept { return total_violations == 0; }
};

CheckerSummary run_model_checker(const CheckerOptions& options = {});

}  // namespace revtr::analysis
