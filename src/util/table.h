// Plain-text table and curve rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as
// text: tables render with aligned columns, figures render as "x y ..."
// series blocks that can be plotted directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace revtr::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a row; cells are stringified by the caller (see cell() helpers).
  void add_row(std::vector<std::string> row);

  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers for table cells.
std::string cell(double value, int precision = 2);
std::string cell_percent(double fraction, int precision = 1);
std::string cell_count(std::uint64_t n);

// A named series of (x, y) points, rendered one point per line.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

// Render a figure: a title line, then each series as a block.
std::string render_figure(const std::string& title,
                          const std::vector<Series>& series,
                          int precision = 4);

}  // namespace revtr::util
