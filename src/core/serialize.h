// JSON serialization of measurement results.
//
// The production system returns reverse traceroutes over REST/gRPC and
// archives them to cloud storage (Appx A). These converters define the
// equivalent stable wire format: every hop with address and provenance,
// the outcome, timing, probe accounting, and the trust flags (§5.2.2).
#pragma once

#include <optional>

#include "core/revtr.h"
#include "util/json.h"

namespace revtr::core {

// Stable JSON shape:
// {
//   "destination": "1.2.3.4", "source": "5.6.7.8",
//   "status": "complete",
//   "hops": [{"addr": "...", "via": "spoofed-rr"}, {"via": "*"}, ...],
//   "latency_us": 123, "probes": {"rr": 1, "spoofed_rr": 9, ...},
//   "flags": {"suspicious_gap": false, "private_hops": false,
//             "stale_traceroute": false, "dbr_suspect": false,
//             "interdomain_symmetry": false},
//   "symmetry_assumptions": 0, "spoofed_batches": 2
// }
util::Json to_json(const ReverseTraceroute& result,
                   const topology::Topology& topo);

// Inverse of to_json. Host ids are restored by address lookup in `topo`;
// returns nullopt on malformed documents or unknown addresses.
std::optional<ReverseTraceroute> reverse_traceroute_from_json(
    const util::Json& json, const topology::Topology& topo);

}  // namespace revtr::core
