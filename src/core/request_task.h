// One reverse-traceroute measurement as a resumable staged state machine.
//
// RequestTask is the engine's Fig 2 control flow unrolled into explicit
// stages (atlas-intersect → rr-cache-replay → rr-direct → rr-spoof-batches →
// dbr-verify → timestamp → symmetry, mirroring the TraceStage span names).
// Every point where the blocking engine used to call the Prober is now a
// suspension point: advance() runs pure transitions until the task either
// finishes or yields a *probe demand set* (sched::ProbeDemand), and supply()
// feeds the resolved outcomes back in demand order to resume it.
//
// Two executors drive tasks:
//   * RevtrEngine::measure() — the blocking path — fulfills each demand set
//     inline via sched::execute_demand(), so blocking behaviour is the
//     staged machine run to completion with a trivial scheduler.
//   * sched::ProbeScheduler pump loops multiplex many tasks, coalescing
//     identical in-flight demands across requests.
// Because simulated probe outcomes are content-addressed (DESIGN.md §8), the
// two executors produce byte-identical ReverseTraceroutes — pinned by
// tests/concurrency_test.cpp and swept by revtr_mc (invariant I7).
//
// A task owns its request's clock, RNG stream, and optional trace for the
// whole measurement, so stage spans survive suspension: a span opened before
// a demand set closes after the outcomes arrive, however many pump rounds
// later that is. Probe cost is attributed from outcomes (issued packets
// only; coalesced outcomes cost the request nothing), keeping invariant I6's
// span-sum == online-probes contract intact.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/revtr.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/sim_clock.h"
#include "vpselect/ingress.h"

namespace revtr::core {

class RequestTask {
 public:
  // `engine` supplies the collaborators and config; `clock`, `rng`, and
  // `trace` belong to this request and must outlive the task. Multiplexed
  // tasks must each get their own clock and RNG stream (the parallel driver
  // seeds per request from (campaign seed, index), same as blocking mode).
  RequestTask(RevtrEngine& engine, topology::HostId destination,
              topology::HostId source, util::SimClock& clock, util::Rng& rng,
              obs::Trace* trace);

  RequestTask(const RequestTask&) = delete;
  RequestTask& operator=(const RequestTask&) = delete;

  // Runs the machine until it finishes or needs probes. Returns the demand
  // set to fulfill (empty iff done()). The span stays valid until the next
  // advance() call.
  std::span<const sched::ProbeDemand> advance();

  // Resumes with the outcomes of the last demand set, in demand order.
  void supply(std::span<const sched::ProbeOutcome> outcomes);

  bool done() const noexcept { return stage_ == Stage::kDone; }
  const ReverseTraceroute& result() const noexcept { return result_; }
  ReverseTraceroute take_result();

 private:
  // The legal transitions are declared next to each enumerator and
  // enforced by revtr_lint's stage-graph pass against every `stage_ =`
  // assignment reachable from the stage's handler; its stage-span pass
  // additionally proves every open_stage has a close_stage on all paths.
  enum class Stage : std::uint8_t {
    // Source check, atlas intersect, RR cache/direct.
    // lint: stage(kLoopHead -> kLoopHead, kRrDirectWait, kAfterRr, kDone)
    kLoopHead,
    // lint: stage(kRrDirectWait -> kLoopHead, kAfterRr, kDiscoveryWait, kSpoofEmit)
    kRrDirectWait,
    // On-demand ingress survey (offline).
    // lint: stage(kDiscoveryWait -> kSpoofEmit)
    kDiscoveryWait,
    // Build the next spoofed-RR batch.
    // lint: stage(kSpoofEmit -> kSpoofEmit, kSpoofBatchWait, kAfterRr)
    kSpoofEmit,
    // lint: stage(kSpoofBatchWait -> kSpoofEmit, kDbrEmit, kLoopHead)
    kSpoofBatchWait,
    // Appx E redundancy check.
    // lint: stage(kDbrEmit -> kDbrVerifyWait)
    kDbrEmit,
    // lint: stage(kDbrVerifyWait -> kLoopHead, kSpoofEmit)
    kDbrVerifyWait,
    // RR exhausted: timestamp technique or skip.
    // lint: stage(kAfterRr -> kTsNext, kSymmetryEmit)
    kAfterRr,
    // Pick the next TS adjacency candidate.
    // lint: stage(kTsNext -> kTsDirectWait, kSymmetryEmit)
    kTsNext,
    // lint: stage(kTsDirectWait -> kTsSpoofEmit, kLoopHead, kTsNext)
    kTsDirectWait,
    // Direct TS filtered: spoofed retry.
    // lint: stage(kTsSpoofEmit -> kTsSpoofWait)
    kTsSpoofEmit,
    // lint: stage(kTsSpoofWait -> kLoopHead, kTsNext)
    kTsSpoofWait,
    // Cache lookup or forward traceroute.
    // lint: stage(kSymmetryEmit -> kSymmetryWait, kLoopHead, kDone)
    kSymmetryEmit,
    // lint: stage(kSymmetryWait -> kLoopHead, kDone)
    kSymmetryWait,
    // lint: stage(kDone ->)
    kDone,
  };

  // Pure transitions (advance side).
  void step_loop_head();
  bool try_atlas();
  void begin_record_route();
  void begin_spoofed();
  void setup_attempts(const vpselect::PrefixPlan& plan);
  void step_spoof_emit();
  void step_dbr_emit();
  void step_after_rr();
  void step_ts_next();
  void step_ts_spoof_emit();
  void step_symmetry_emit();

  // Outcome consumers (supply side).
  void on_rr_direct(std::span<const sched::ProbeOutcome> outcomes);
  void on_discovery(std::span<const sched::ProbeOutcome> outcomes);
  void on_spoof_batch(std::span<const sched::ProbeOutcome> outcomes);
  void on_dbr_verify(std::span<const sched::ProbeOutcome> outcomes);
  void on_ts_direct(std::span<const sched::ProbeOutcome> outcomes);
  void on_ts_spoofed(std::span<const sched::ProbeOutcome> outcomes);
  void on_symmetry(std::span<const sched::ProbeOutcome> outcomes);

  // Shared helpers (ported from the blocking engine unchanged).
  void evaluate_ts(const sched::ProbeOutcome& probe);
  void apply_symmetry(std::optional<net::Ipv4Addr> penultimate, bool reached);
  void finish_spoof_round();
  bool append_reverse_hops(std::span<const net::Ipv4Addr> revealed,
                           HopSource source);
  bool already_in_path(net::Ipv4Addr addr) const;
  void remember_rr(std::span<const net::Ipv4Addr> revealed, HopSource how);
  void finalize_flags();
  void finish();

  // Probe-cost accounting: issued packets charge the request and the open
  // stage span; coalesced outcomes count only coalesced_probes; offline
  // outcomes accumulate offline_probes.
  void charge(const sched::ProbeDemand& demand,
              const sched::ProbeOutcome& outcome);

  // Stage span bookkeeping (explicit, not RAII — spans must survive
  // suspension between advance() and supply()).
  void open_stage(const char* name);
  void annotate_stage(const char* key, std::string value);
  void close_stage();

  const EngineConfig& config() const noexcept;
  const EngineMetrics* metrics() const noexcept;

  RevtrEngine& engine_;
  util::SimClock& clock_;
  util::Rng& rng_;
  obs::Trace* trace_;
  topology::HostId source_;

  Stage stage_ = Stage::kLoopHead;
  ReverseTraceroute result_;
  net::Ipv4Addr src_addr_;
  net::Ipv4Addr current_;
  std::vector<sched::ProbeDemand> demands_;
  std::vector<sched::ProbeDemand> consumed_;  // Last fulfilled demand set.

  // Per-round scratch containers, bump-allocated from arena_. Everything in
  // here is dead by the time control re-enters kLoopHead (the RR attempt
  // list, the spoof batch, revealed hops, and TS candidates all live within
  // one technique round), so step_loop_head() destroys the containers,
  // resets the arena in O(1), and re-creates them empty. Destroy-then-reset
  // is mandatory: clear() alone would leave stale capacity pointing into
  // recycled arena memory (util/arena.h lifetime rules).
  struct Scratch {
    template <typename T>
    using Vec = std::vector<T, util::ArenaAllocator<T>>;

    explicit Scratch(util::Arena& arena)
        : attempts(util::ArenaAllocator<vpselect::Attempt>(arena)),
          batch_attempts(util::ArenaAllocator<vpselect::Attempt>(arena)),
          revealed(util::ArenaAllocator<net::Ipv4Addr>(arena)),
          ts_candidates(util::ArenaAllocator<net::Ipv4Addr>(arena)) {}

    Vec<vpselect::Attempt> attempts;
    Vec<vpselect::Attempt> batch_attempts;  // Parallel to demands_.
    Vec<net::Ipv4Addr> revealed;
    Vec<net::Ipv4Addr> ts_candidates;
  };

  // RR technique state.
  std::uint64_t rr_key_ = 0;
  std::optional<topology::PrefixId> prefix_;
  std::size_t next_attempt_ = 0;
  util::FlatMap<std::size_t, int> rank_failures_;

  // TS technique state.
  std::size_t ts_index_ = 0;
  std::size_t ts_tried_ = 0;
  net::Ipv4Addr ts_adjacent_;

  // arena_ before scratch_: the containers must be destroyed before the
  // memory they point into.
  util::Arena arena_;
  std::optional<Scratch> scratch_;

  // Trace bookkeeping.
  obs::Trace::SpanId root_span_ = obs::Trace::kDroppedSpan;
  obs::Trace::SpanId stage_span_ = obs::Trace::kDroppedSpan;
  std::uint64_t stage_probes_ = 0;
};

}  // namespace revtr::core
