// revtr_mc: exhaustive state-machine model checker for the revtr engine.
//
// Enumerates the full (topology shape × seed × config preset × fault
// schedule) grid from analysis/model_checker.h, runs one measurement per
// state, and checks the invariant catalog (I1–I4, plus I6 trace attribution
// and the I7 scheduler-consistency audit over a staged-twin replay) and the
// differential oracle (I5) against simulator ground truth. Exits nonzero if
// any state violates any invariant.
//
// Usage: revtr_mc [--states N] [--seeds N] [--salts N] [--report N]
//   --states N   stop after N states (0 = full grid, the default)
//   --seeds N    seeds per topology shape (default 15)
//   --salts N    ECMP salts unioned into the oracle's feasible set (default 8)
//   --report N   violation details printed verbatim (default 20)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/model_checker.h"

namespace {

std::uint64_t parse_count(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "revtr_mc: bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  revtr::analysis::CheckerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "revtr_mc: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--states") == 0 ||
        std::strcmp(arg, "--max-states") == 0) {
      options.max_states = static_cast<std::size_t>(parse_count(arg, next()));
    } else if (std::strcmp(arg, "--seeds") == 0) {
      options.seeds_per_shape =
          static_cast<std::size_t>(parse_count(arg, next()));
    } else if (std::strcmp(arg, "--salts") == 0) {
      options.oracle_salts = parse_count(arg, next());
    } else if (std::strcmp(arg, "--report") == 0) {
      options.max_reported = static_cast<std::size_t>(parse_count(arg, next()));
    } else {
      std::fprintf(stderr,
                   "usage: revtr_mc [--states N] [--seeds N] [--salts N] "
                   "[--report N]\n");
      return 2;
    }
  }

  const auto shapes = revtr::analysis::default_shapes();
  const auto presets = revtr::analysis::default_presets();
  const auto schedules = revtr::analysis::default_fault_schedules();
  std::printf("revtr_mc: %zu shapes x %zu seeds x %zu presets x %zu "
              "schedules = %zu states%s\n",
              shapes.size(), options.seeds_per_shape, presets.size(),
              schedules.size(),
              shapes.size() * options.seeds_per_shape * presets.size() *
                  schedules.size(),
              options.max_states != 0 ? " (capped)" : "");

  const auto summary = revtr::analysis::run_model_checker(options);

  std::printf("states explored:     %zu\n", summary.states);
  std::printf("  complete:          %zu\n", summary.completed);
  std::printf("  aborted (Q5):      %zu\n", summary.aborted);
  std::printf("  unreachable:       %zu\n", summary.unreachable);
  std::printf("oracle hop checks:   %zu (%zu permitted divergences)\n",
              summary.oracle_pairs, summary.oracle_permitted);
  std::printf("staged twins:        %zu (%llu demands coalesced)\n",
              summary.staged_twins,
              static_cast<unsigned long long>(summary.staged_coalesced));
  std::printf("violations:          %zu\n", summary.total_violations);
  for (std::size_t i = 0; i < revtr::analysis::kNumInvariants; ++i) {
    if (summary.by_invariant[i] == 0) continue;
    std::printf("  %-22s %zu\n",
                revtr::analysis::to_string(
                    static_cast<revtr::analysis::InvariantId>(i))
                    .c_str(),
                summary.by_invariant[i]);
  }
  for (const auto& sample : summary.samples) {
    std::printf("  ! %s\n", sample.c_str());
  }

  if (!summary.ok()) {
    std::printf("revtr_mc: FAIL\n");
    return 1;
  }
  std::printf("revtr_mc: OK\n");
  return 0;
}
