// Admission control for the measurement daemon: per-tenant token buckets,
// bounded queues, scheduler backpressure, and deadline-aware load shedding.
//
// The controller generalizes the engine's NDT shed path (give up on a
// request whose deadline cannot be met) from one measurement to the whole
// submission pipeline: a request that would sit in queue past its deadline
// is refused at the door (kDeadlineUnmeetable) instead of wasting probe
// budget on an answer nobody will read — the rationing argument of Donnet
// et al. applied at the service boundary.
//
// The controller holds no lock of its own; ServerDaemon owns one instance
// and calls it under the daemon mutex. Quota checks (daily request/probe
// budgets) stay in RevtrService — admission decides whether the *system*
// can take the request, the service decides whether the *tenant* may.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "server/frame.h"

namespace revtr::server {

struct TokenBucketOptions {
  double rate_per_sec = 2000.0;  // Sustained submits per second.
  double burst = 256.0;          // Bucket depth.
};

// Standard token bucket on a microsecond clock. Not thread-safe; callers
// synchronize externally (the daemon serializes all admission decisions).
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketOptions options)
      : options_(options), tokens_(options.burst) {}

  // Consumes one token if available, refilling for elapsed time first.
  bool try_take(std::int64_t now_us);

  double tokens() const { return tokens_; }

 private:
  TokenBucketOptions options_;
  double tokens_;
  std::int64_t last_refill_us_ = 0;
};

struct AdmissionConfig {
  // Bounded submission queue (all priorities combined). Beyond this the
  // daemon refuses rather than buffering unboundedly.
  std::size_t queue_capacity = 1024;
  // Refuse new work while the ProbeScheduler holds more unfinished demand
  // sets than this — the queue bound alone cannot see demand the workers
  // have already handed to the scheduler.
  std::size_t sched_backlog_limit = 4096;
  // EWMA smoothing for the observed per-request wall latency that feeds the
  // deadline-unmeetable estimate.
  double latency_ewma_alpha = 0.2;
  std::size_t workers = 2;
};

// Instantaneous load the daemon samples before each decision.
struct AdmissionLoad {
  std::size_t queued = 0;         // Requests waiting in the daemon queue.
  std::size_t inflight = 0;       // Requests being measured right now.
  std::size_t sched_backlog = 0;  // ProbeScheduler::backlog().
  bool draining = false;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  // Registers a tenant's token bucket; tenant ids are dense and small
  // (RevtrService user ids start at 1).
  void add_tenant(std::uint32_t tenant, TokenBucketOptions bucket);

  // Returns the reason to refuse, or nullopt to admit. Checks in order:
  // draining, deadline already expired, tenant rate limit, queue capacity,
  // scheduler backpressure, deadline unmeetable under estimated wait.
  std::optional<RejectReason> decide(std::uint32_t tenant,
                                     std::int64_t deadline_us,
                                     std::int64_t now_us,
                                     const AdmissionLoad& load);

  // Feeds one finished request's wall latency into the wait estimator.
  void observe_latency(std::int64_t wall_us);

  // Estimated queue wait for a newly admitted request, in micros: smoothed
  // per-request latency times queue depth ahead of it, divided across the
  // worker pool. Zero until the first completion is observed.
  std::int64_t estimated_wait_us(const AdmissionLoad& load) const;

  double smoothed_latency_us() const { return ewma_latency_us_; }

 private:
  AdmissionConfig config_;
  std::vector<TokenBucket> buckets_;  // Indexed by tenant id.
  double ewma_latency_us_ = 0.0;
};

}  // namespace revtr::server
