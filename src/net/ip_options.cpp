#include "net/ip_options.h"

#include "util/check.h"

namespace revtr::net {

namespace {

using util::ByteReader;
using util::checked_cast;
using util::truncate_cast;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(truncate_cast<std::uint8_t>(v >> 24));
  out.push_back(truncate_cast<std::uint8_t>(v >> 16));
  out.push_back(truncate_cast<std::uint8_t>(v >> 8));
  out.push_back(truncate_cast<std::uint8_t>(v));
}

}  // namespace

void RecordRouteOption::encode(std::vector<std::uint8_t>& out) const {
  REVTR_DCHECK(used_ <= kMaxSlots);
  out.push_back(kType);
  out.push_back(kLength);
  // Pointer is 1-based and points at the first free slot; the first slot
  // begins at offset 4 (RFC 791 §3.1).
  out.push_back(checked_cast<std::uint8_t>(4 + 4 * used_));
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    put_u32(out, i < used_ ? slots_[i].value() : 0);
  }
}

std::optional<RecordRouteOption> RecordRouteOption::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  const std::uint8_t type = reader.u8();
  const std::uint8_t length = reader.u8();
  const std::uint8_t pointer = reader.u8();
  if (!reader.ok() || type != kType || length != kLength) return std::nullopt;
  if (bytes.size() < kLength) return std::nullopt;
  // Valid pointers: 4, 8, ..., 40 (full).
  if (pointer < 4 || (pointer - 4) % 4 != 0 || pointer > kLength + 1) {
    return std::nullopt;
  }
  RecordRouteOption option;
  const std::size_t used = std::size_t{pointer - 4u} / 4;
  if (used > kMaxSlots) return std::nullopt;
  for (std::size_t i = 0; i < used; ++i) {
    option.stamp(Ipv4Addr(reader.u32()));
  }
  REVTR_DCHECK(reader.ok());  // kLength covers all kMaxSlots addresses.
  return option;
}

TimestampOption TimestampOption::prespecified(
    std::span<const Ipv4Addr> addrs) {
  TimestampOption option;
  for (Ipv4Addr addr : addrs) {
    if (option.used_ == kMaxEntries) break;
    option.entries_[option.used_++] = Entry{addr, 0, false};
  }
  return option;
}

std::optional<std::size_t> TimestampOption::next_pending() const noexcept {
  for (std::size_t i = 0; i < used_; ++i) {
    if (!entries_[i].stamped) return i;
  }
  return std::nullopt;
}

bool TimestampOption::try_stamp(Ipv4Addr addr,
                                std::uint32_t timestamp) noexcept {
  const auto pending = next_pending();
  if (!pending || entries_[*pending].addr != addr) return false;
  entries_[*pending].timestamp = timestamp;
  entries_[*pending].stamped = true;
  return true;
}

void TimestampOption::encode(std::vector<std::uint8_t>& out) const {
  REVTR_DCHECK(used_ <= kMaxEntries);
  REVTR_DCHECK(overflow_ <= 0x0f);
  const auto length = checked_cast<std::uint8_t>(4 + 8 * used_);
  out.push_back(kType);
  out.push_back(length);
  // Pointer (1-based) to the first pending entry; past the end when done.
  std::uint8_t pointer = checked_cast<std::uint8_t>(length + 1);
  if (const auto pending = next_pending()) {
    pointer = checked_cast<std::uint8_t>(5 + 8 * *pending);
  }
  out.push_back(pointer);
  out.push_back(checked_cast<std::uint8_t>((overflow_ << 4) |
                                           kFlagPrespecified));
  for (std::size_t i = 0; i < used_; ++i) {
    put_u32(out, entries_[i].addr.value());
    put_u32(out, entries_[i].stamped ? entries_[i].timestamp : 0);
  }
}

std::optional<TimestampOption> TimestampOption::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  const std::uint8_t type = reader.u8();
  const std::uint8_t length = reader.u8();
  const std::uint8_t pointer = reader.u8();
  const std::uint8_t oflw_flags = reader.u8();
  if (!reader.ok() || type != kType) return std::nullopt;
  if ((oflw_flags & 0x0f) != kFlagPrespecified) return std::nullopt;
  if (length < 4 || (length - 4) % 8 != 0 || bytes.size() < length) {
    return std::nullopt;
  }
  const std::size_t entries = std::size_t{length - 4u} / 8;
  if (entries > kMaxEntries) return std::nullopt;
  if (pointer < 5 || pointer > length + 1 || (pointer - 5) % 8 != 0) {
    return std::nullopt;
  }
  TimestampOption option;
  option.overflow_ = checked_cast<std::uint8_t>(oflw_flags >> 4);
  const std::size_t stamped_count = std::size_t{pointer - 5u} / 8;
  for (std::size_t i = 0; i < entries; ++i) {
    Entry entry;
    entry.addr = Ipv4Addr(reader.u32());
    const std::uint32_t timestamp = reader.u32();
    entry.stamped = i < stamped_count;
    // Normalize: a pending entry carries no meaningful timestamp, and the
    // encoder writes 0 there — keeping wire garbage would break the
    // decode/encode round-trip property the fuzzer enforces.
    entry.timestamp = entry.stamped ? timestamp : 0;
    option.entries_[option.used_++] = entry;
  }
  REVTR_DCHECK(reader.ok());  // bytes.size() >= length covers all entries.
  return option;
}

}  // namespace revtr::net
