// IPv4 header options used by Reverse Traceroute: Record Route (RFC 791
// option 7) and Timestamp with prespecified addresses (RFC 791 option 68,
// flag 3). These carry the paper's two in-band measurement channels
// (Insight 1.2).
//
// Both classes hold the logical state (slots, pointer) and encode/decode the
// exact wire format so that the simulator manipulates the same structures a
// raw-socket prober would, and so the parsing corner cases (full options,
// truncated buffers, misaligned pointers) are testable.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "util/check.h"

namespace revtr::net {

// ---------------------------------------------------------------------------
// Record Route: up to 9 four-byte address slots in a 40-byte option area.
// Routers stamp the address of the *outgoing* interface as the packet is
// forwarded; the reply carries the accumulated slots back, which is what lets
// Reverse Traceroute observe reverse hops (§2).
// ---------------------------------------------------------------------------
class RecordRouteOption {
 public:
  static constexpr std::size_t kMaxSlots = 9;
  static constexpr std::uint8_t kType = 7;
  // 3 header bytes + 9 * 4 address bytes.
  static constexpr std::uint8_t kLength = 3 + 4 * kMaxSlots;

  RecordRouteOption() = default;

  // Number of stamped slots.
  std::size_t size() const noexcept { return used_; }
  bool full() const noexcept { return used_ == kMaxSlots; }
  bool empty() const noexcept { return used_ == 0; }
  std::size_t remaining() const noexcept { return kMaxSlots - used_; }

  // Stamp the next free slot. Returns false when the option is full, in
  // which case routers forward the packet unchanged (per RFC 791).
  bool stamp(Ipv4Addr addr) noexcept {
    if (full()) return false;
    slots_[used_++] = addr;
    return true;
  }

  Ipv4Addr slot(std::size_t i) const noexcept {
    REVTR_DCHECK(i < used_);
    return slots_[i];
  }
  std::span<const Ipv4Addr> entries() const noexcept {
    return {slots_.data(), used_};
  }
  std::vector<Ipv4Addr> to_vector() const {
    return {slots_.begin(), slots_.begin() + static_cast<long>(used_)};
  }

  // Wire format: type, length, pointer, then 9 slots (zeros when unused).
  void encode(std::vector<std::uint8_t>& out) const;
  static std::optional<RecordRouteOption> decode(
      std::span<const std::uint8_t> bytes);

  bool operator==(const RecordRouteOption&) const = default;

 private:
  std::array<Ipv4Addr, kMaxSlots> slots_{};
  std::size_t used_ = 0;
};

// ---------------------------------------------------------------------------
// Timestamp with prespecified addresses (tsprespec): the sender lists up to
// four addresses; each listed router fills its timestamp only when it is
// reached *after* all earlier entries were filled. Reverse Traceroute uses
// the pair <current hop, adjacency> to test whether the adjacency lies on
// the reverse path (§2, Fig 1e).
// ---------------------------------------------------------------------------
class TimestampOption {
 public:
  static constexpr std::size_t kMaxEntries = 4;
  static constexpr std::uint8_t kType = 68;
  static constexpr std::uint8_t kFlagPrespecified = 3;

  struct Entry {
    Ipv4Addr addr;
    std::uint32_t timestamp = 0;  // Milliseconds since midnight UT.
    bool stamped = false;

    bool operator==(const Entry&) const = default;
  };

  TimestampOption() = default;

  // Build a prespec query for the given addresses (at most kMaxEntries).
  static TimestampOption prespecified(std::span<const Ipv4Addr> addrs);

  std::size_t size() const noexcept { return used_; }
  std::span<const Entry> entries() const noexcept {
    return {entries_.data(), used_};
  }

  // Index of the next entry awaiting a stamp, or nullopt when all stamped.
  std::optional<std::size_t> next_pending() const noexcept;

  // Called by a router owning `addr`: stamps only if `addr` is the next
  // pending prespecified address. Returns true if a stamp was recorded.
  bool try_stamp(Ipv4Addr addr, std::uint32_t timestamp) noexcept;

  // True when the prespecified address at position i recorded a timestamp.
  bool stamped(std::size_t i) const noexcept {
    REVTR_DCHECK(i < used_);
    return entries_[i].stamped;
  }

  // Wire format: type, length, pointer, overflow/flags, then entries.
  void encode(std::vector<std::uint8_t>& out) const;
  static std::optional<TimestampOption> decode(
      std::span<const std::uint8_t> bytes);

  bool operator==(const TimestampOption&) const = default;

 private:
  std::array<Entry, kMaxEntries> entries_{};
  std::size_t used_ = 0;
  std::uint8_t overflow_ = 0;
};

}  // namespace revtr::net
