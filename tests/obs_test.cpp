// Observability subsystem tests: histogram bucketing edge cases, registry
// get-or-create semantics, exporter determinism, trace span trees, the
// bounded TraceSink, and the pinned acceptance criterion that a campaign's
// metrics snapshot is byte-identical across runs and across worker counts
// (with the shared cache off — the cache makes probe totals depend on
// request interleaving, which is the caller's nondeterminism, not the
// registry's).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/parallel.h"

namespace revtr {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::Trace;
using obs::TraceSink;

// --- Histogram bucketing --------------------------------------------------

TEST(ObsHistogram, EmptyHistogramHasNoSamples) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket_count(b), 0u);
  }
}

TEST(ObsHistogram, SingleSampleLandsInExactlyOneBucket) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1234u);
  std::size_t nonempty = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket_count(b) > 0) {
      ++nonempty;
      EXPECT_EQ(b, Histogram::bucket_of(1234));
    }
  }
  EXPECT_EQ(nonempty, 1u);
}

TEST(ObsHistogram, SmallValuesGetExactBuckets) {
  // Values 0..3 are exact: distinct buckets, each its own le bound.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v) << "value " << v;
    EXPECT_EQ(Histogram::bucket_le(v), v) << "value " << v;
  }
  EXPECT_EQ(Histogram::bucket_of(4), 4u);
}

TEST(ObsHistogram, BucketBoundariesRoundTrip) {
  // For every finite bucket, its inclusive upper bound maps back into it
  // and the next integer maps into a strictly later bucket.
  for (std::size_t b = 0; b < Histogram::kOverflowBucket; ++b) {
    const std::uint64_t le = Histogram::bucket_le(b);
    EXPECT_EQ(Histogram::bucket_of(le), b) << "bucket " << b;
    EXPECT_GT(Histogram::bucket_of(le + 1), b) << "bucket " << b;
  }
  // Bounds are strictly increasing — no empty bucket ranges.
  for (std::size_t b = 1; b < Histogram::kOverflowBucket; ++b) {
    EXPECT_LT(Histogram::bucket_le(b - 1), Histogram::bucket_le(b));
  }
}

TEST(ObsHistogram, HugeValuesLandInOverflowBucket) {
  const std::uint64_t edge = 1ULL << 48;
  EXPECT_LT(Histogram::bucket_of(edge - 1), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::bucket_of(edge), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::bucket_of(~0ULL), Histogram::kOverflowBucket);

  Histogram h;
  h.record(edge);
  h.record(~0ULL);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::kOverflowBucket), 2u);
  EXPECT_EQ(h.sum(), edge + ~0ULL);  // Wraps; sum is modular u64 on purpose.
}

TEST(ObsHistogram, CountAndSumAggregateAcrossBuckets) {
  Histogram h;
  std::uint64_t want_sum = 0;
  const std::vector<std::uint64_t> samples = {0, 1, 3, 4, 7, 100, 1000, 1000};
  for (const auto v : samples) {
    h.record(v);
    want_sum += v;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.sum(), want_sum);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(1000)), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// --- Quantile estimation edges --------------------------------------------

TEST(ObsQuantile, EmptyHistogramReturnsZeroForAnyQuantile) {
  obs::HistogramSample sample;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(obs::histogram_quantile(sample, q), 0.0) << "q=" << q;
  }
}

TEST(ObsQuantile, QuantileIsClampedToUnitInterval) {
  obs::HistogramSample sample;
  sample.count = 4;
  sample.buckets = {{10, 0}, {20, 4}};
  EXPECT_EQ(obs::histogram_quantile(sample, -0.5),
            obs::histogram_quantile(sample, 0.0));
  EXPECT_EQ(obs::histogram_quantile(sample, 1.5),
            obs::histogram_quantile(sample, 1.0));
}

TEST(ObsQuantile, SingleSampleInterpolatesWithinItsBucket) {
  obs::HistogramSample sample;
  sample.count = 1;
  sample.buckets = {{8, 0}, {10, 1}};
  // The one sample lives in (8, 10]: q sweeps linearly across that bucket
  // and never escapes it.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.5), 9.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 1.0), 10.0);
}

TEST(ObsQuantile, QuantileZeroSkipsEmptyLeadingBuckets) {
  // Regression: q = 0 used to land in the first bucket (cum 0 >= rank 0)
  // and return its bound — claiming a minimum far below any sample.
  obs::HistogramSample sample;
  sample.count = 5;
  sample.buckets = {{0, 0}, {1, 0}, {100, 0}, {200, 5}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 1.0), 200.0);
}

TEST(ObsQuantile, RankPastFiniteBucketsClampsToLastFiniteBound) {
  obs::HistogramSample sample;
  sample.count = 10;   // 6 finite + 4 overflow samples.
  sample.overflow = 4;
  sample.buckets = {{100, 6}};
  // p50 lands inside the finite mass; p99 lands in overflow and clamps.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.5),
                   100.0 * (5.0 / 6.0));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.99), 100.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 1.0), 100.0);
}

TEST(ObsQuantile, AllMassInOverflowClampsToLargestFiniteBound) {
  // Regression: a histogram whose every sample overflowed used to snapshot
  // an empty bucket list, making every quantile collapse to 0. The snapshot
  // now keeps the largest finite bound for exactly this case.
  MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("overflow_only_us");
  h.record(~0ULL);
  h.record(1ULL << 60);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& sample = snap.histograms[0];
  EXPECT_EQ(sample.count, 2u);
  EXPECT_EQ(sample.overflow, 2u);
  ASSERT_FALSE(sample.buckets.empty());
  const double last_finite = static_cast<double>(
      Histogram::bucket_le(Histogram::kOverflowBucket - 1));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.0), last_finite);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 0.5), last_finite);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(sample, 1.0), last_finite);
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  obs::Counter& a = registry.counter("revtr_test_total");
  obs::Counter& b = registry.counter("revtr_test_total");
  EXPECT_EQ(&a, &b);
  registry.gauge("revtr_test_size");
  registry.histogram("revtr_test_latency_us");
  EXPECT_EQ(registry.size(), 3u);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  registry.counter("revtr_a_total").add(5);
  registry.gauge("revtr_b").set(-7);
  registry.histogram("revtr_c_us").record(42);
  registry.reset();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.counter("revtr_a_total").total(), 0u);
  EXPECT_EQ(registry.gauge("revtr_b").value(), 0);
  EXPECT_EQ(registry.histogram("revtr_c_us").count(), 0u);
}

TEST(ObsRegistryDeathTest, KindMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.counter("revtr_kind_total");
  EXPECT_DEATH(registry.gauge("revtr_kind_total"), "");
}

// --- Exporters ------------------------------------------------------------

// Two registries fed the same values in different insertion orders must
// render byte-identical text in every format.
TEST(ObsExporters, RenderingIsInsertionOrderIndependent) {
  MetricsRegistry first;
  first.counter("revtr_z_total").add(3);
  first.counter("revtr_a_total{type=\"rr\"}").add(1);
  first.counter("revtr_a_total{type=\"ping\"}").add(2);
  first.gauge("revtr_m_size").set(9);
  first.histogram("revtr_lat_us").record(5);
  first.histogram("revtr_lat_us").record(500);

  MetricsRegistry second;
  second.histogram("revtr_lat_us").record(500);
  second.gauge("revtr_m_size").set(9);
  second.counter("revtr_a_total{type=\"ping\"}").add(2);
  second.counter("revtr_z_total").add(2);
  second.counter("revtr_z_total").add(1);
  second.counter("revtr_a_total{type=\"rr\"}").add(1);
  second.histogram("revtr_lat_us").record(5);

  EXPECT_EQ(first.snapshot().to_prometheus(), second.snapshot().to_prometheus());
  EXPECT_EQ(first.snapshot().to_json().dump(), second.snapshot().to_json().dump());
  EXPECT_EQ(first.snapshot().to_table(), second.snapshot().to_table());
}

TEST(ObsExporters, PrometheusTextIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("revtr_probes_total{type=\"rr\"}").add(4);
  registry.counter("revtr_probes_total{type=\"ping\"}").add(2);
  registry.histogram("revtr_request_latency_us").record(10);
  const std::string text = registry.snapshot().to_prometheus();

  // One TYPE line per family, not per labeled series.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE revtr_probes_total ", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("# TYPE revtr_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("revtr_probes_total{type=\"rr\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("revtr_request_latency_us_count 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("revtr_request_latency_us_sum 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1\n"), std::string::npos);
}

// --- Trace ----------------------------------------------------------------

TEST(ObsTrace, SpansFormATreeWithLifoNesting) {
  Trace trace;
  const auto root = trace.start_span("request", 0);
  const auto child = trace.start_span("rr-direct", 10);
  trace.end_span(child, 40, 6);
  const auto sibling = trace.start_span("symmetry", 40);
  trace.annotate(sibling, "outcome", "intradomain");
  trace.end_span(sibling, 50, 0);
  trace.end_span(root, 50, 0);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].parent, obs::Span::kNoParent);
  EXPECT_EQ(trace.spans()[1].parent, 0u);
  EXPECT_EQ(trace.spans()[2].parent, 0u);
  EXPECT_FALSE(trace.spans()[0].open);
  EXPECT_EQ(trace.spans()[1].probes, 6u);
  EXPECT_EQ(trace.attributed_probes(), 6u);
  ASSERT_EQ(trace.spans()[2].annotations.size(), 1u);
  EXPECT_EQ(trace.spans()[2].annotations[0].second, "intradomain");
  EXPECT_FALSE(trace.overflowed());
}

TEST(ObsTrace, EventIsAZeroDurationClosedSpan) {
  Trace trace;
  const auto root = trace.start_span("request", 0);
  trace.event("ts-skipped", 25);
  trace.end_span(root, 30, 0);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].begin, trace.spans()[1].end);
  EXPECT_FALSE(trace.spans()[1].open);
  EXPECT_EQ(trace.spans()[1].parent, 0u);
}

TEST(ObsTrace, OverflowLatchesAndDropsSpansSafely) {
  Trace trace(/*max_spans=*/2);
  const auto a = trace.start_span("request", 0);
  const auto b = trace.start_span("rr-direct", 1);
  const auto dropped = trace.start_span("one-too-many", 2);
  EXPECT_EQ(dropped, Trace::kDroppedSpan);
  EXPECT_TRUE(trace.overflowed());
  // Operations on the dropped id are no-ops, not crashes.
  trace.annotate(dropped, "k", "v");
  trace.end_span(dropped, 3, 99);
  trace.end_span(b, 4, 2);
  trace.end_span(a, 5, 0);
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.attributed_probes(), 2u);
}

// --- TraceSink ------------------------------------------------------------

TEST(ObsTraceSink, RingEvictsOldestAndCountsDrops) {
  TraceSink sink(/*capacity=*/3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Trace trace;
    trace.request_index = i;
    sink.publish(std::move(trace));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto kept = sink.published();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].request_index, 2u);
  EXPECT_EQ(kept[2].request_index, 4u);
}

TEST(ObsTraceSink, PublishedIsSortedByRequestIndex) {
  TraceSink sink;
  for (const std::uint64_t i : {4u, 1u, 3u, 0u, 2u}) {
    Trace trace;
    trace.request_index = i;
    sink.publish(std::move(trace));
  }
  const auto traces = sink.published();
  ASSERT_EQ(traces.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(traces[i].request_index, i);
  }
  EXPECT_EQ(sink.dropped(), 0u);
}

// --- Campaign snapshot determinism (acceptance criterion) -----------------

class ObsCampaignTest : public ::testing::Test {
 protected:
  static topology::TopologyConfig small_config() {
    topology::TopologyConfig config;
    config.seed = 91;
    config.num_ases = 150;
    config.num_vps = 10;
    config.num_vps_2016 = 4;
    config.num_probe_hosts = 40;
    return config;
  }

  void SetUp() override {
    lab_ = std::make_unique<eval::Lab>(small_config());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 30);
    const auto dests = lab_->responsive_destinations(true);
    for (std::size_t i = 0; i < 12 && i < dests.size(); ++i) {
      pairs_.emplace_back(dests[i], source_);
    }
    ASSERT_GE(pairs_.size(), 8u);
  }

  service::CampaignDeps deps() {
    return {lab_->topo,  lab_->plane, lab_->atlas,
            lab_->ingress, lab_->ip2as, lab_->relationships};
  }

  // One instrumented campaign run; returns the Prometheus rendering of its
  // metrics snapshot. The shared cache is off: with it on, which request
  // pays for a prefix depends on scheduling, so probe totals would be
  // legitimately worker-count-dependent.
  std::string run_instrumented(std::size_t workers, MetricsRegistry& registry,
                               TraceSink* sink = nullptr,
                               std::size_t sample_every = 0) {
    service::ParallelCampaignOptions options;
    options.workers = workers;
    options.seed = 7;
    options.engine.use_cache = false;
    options.metrics = &registry;
    options.trace_sink = sink;
    options.trace_sample_every = sample_every;
    service::ParallelCampaignDriver driver(deps(), options);
    const auto report = driver.run(pairs_);
    EXPECT_TRUE(report.metrics.has_value());
    EXPECT_EQ(report.metrics->to_prometheus(),
              registry.snapshot().to_prometheus());
    return registry.snapshot().to_prometheus();
  }

  std::unique_ptr<eval::Lab> lab_;
  topology::HostId source_ = topology::kInvalidId;
  std::vector<std::pair<topology::HostId, topology::HostId>> pairs_;
};

TEST_F(ObsCampaignTest, SnapshotIsByteIdenticalAcrossRunsAndWorkerCounts) {
  MetricsRegistry solo_a, solo_b, fleet;
  const std::string text_solo_a = run_instrumented(1, solo_a);
  const std::string text_solo_b = run_instrumented(1, solo_b);
  const std::string text_fleet = run_instrumented(4, fleet);

  EXPECT_FALSE(text_solo_a.empty());
  EXPECT_EQ(text_solo_a, text_solo_b) << "same seed, same workers: not stable";
  EXPECT_EQ(text_solo_a, text_fleet) << "1 vs 4 workers changed the snapshot";

  // The snapshot carries the series check.sh's smoke stage requires.
  for (const char* required :
       {"revtr_requests_total", "revtr_probes_total",
        "revtr_request_latency_us_count", "revtr_engine_stage_total"}) {
    EXPECT_NE(text_solo_a.find(required), std::string::npos)
        << "missing metric family " << required;
  }
}

TEST_F(ObsCampaignTest, TraceSamplingPublishesEveryNthRequest) {
  MetricsRegistry registry;
  TraceSink sink;
  const std::size_t sample_every = 3;
  run_instrumented(2, registry, &sink, sample_every);

  const std::size_t want =
      (pairs_.size() + sample_every - 1) / sample_every;  // indices 0,3,6,...
  EXPECT_EQ(sink.size(), want);
  EXPECT_EQ(sink.dropped(), 0u);
  for (const auto& trace : sink.published()) {
    EXPECT_EQ(trace.request_index % sample_every, 0u);
    ASSERT_FALSE(trace.spans().empty());
    EXPECT_EQ(trace.spans()[0].name, "request");
    // Root carries no probes of its own (I6 leaves attribution to leaves).
    EXPECT_EQ(trace.spans()[0].probes, 0u);
  }
}

TEST_F(ObsCampaignTest, SampledTracesAreWorkerCountInvariant) {
  MetricsRegistry solo_reg, fleet_reg;
  TraceSink solo_sink, fleet_sink;
  run_instrumented(1, solo_reg, &solo_sink, 2);
  run_instrumented(4, fleet_reg, &fleet_sink, 2);

  // A worker's sim clock accumulates across the requests it happens to
  // serve, so absolute timestamps are scheduling-dependent. Everything
  // request-local — span structure, durations, and probe attribution — is
  // not, and that is what the comparison pins.
  const auto shape = [](const TraceSink& sink) {
    std::string out;
    for (const auto& trace : sink.published()) {
      out += "trace " + std::to_string(trace.request_index) + " " +
             std::to_string(trace.destination) + ">" +
             std::to_string(trace.source) + "\n";
      for (const auto& span : trace.spans()) {
        out += "  " + span.name + " parent=" + std::to_string(span.parent) +
               " us=" + std::to_string(span.end - span.begin) +
               " probes=" + std::to_string(span.probes) + "\n";
      }
    }
    return out;
  };
  EXPECT_EQ(shape(solo_sink), shape(fleet_sink));
}

}  // namespace
}  // namespace revtr
