// Differential oracle: accepted paths vs. simulator ground truth (I5).
//
// The simulator can walk the forwarding plane without measuring, so unlike
// the real paper we know the true reverse route. The oracle re-derives, for
// every consecutive hop pair (a -> b) of an accepted path, the set of
// routers ECMP could place on the route from a back to the source, and
// checks that b sits on it. Divergence is a violation only for
// RR-measured hops — those are direct observations of the reverse path
// (Insight 1.3) and must be on it. The paper's explicitly permitted error
// modes stay permitted and are only counted:
//   * kAssumedSymmetric — an intradomain symmetry guess may be wrong (§4.4
//     accepts this residual error; Q5 only bans the interdomain case);
//   * kAtlasIntersection — the adopted suffix is a real measured path to S,
//     but possibly not the one this destination's packets ride (§4.2);
//   * kTimestamp — tsprespec proves the adjacency answered, not that the
//     reverse path transits it (§2 of the 2010 design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/invariants.h"
#include "core/revtr.h"
#include "sim/network.h"

namespace revtr::analysis {

struct OracleReport {
  std::vector<Violation> violations;  // id == InvariantId::kOracle.
  std::size_t pairs_checked = 0;
  std::size_t on_true_path = 0;
  // Hops off the ground-truth path whose technique the paper permits to err.
  std::size_t permitted_divergences = 0;
  // Hops whose address resolves to no router (private aliases etc.).
  std::size_t unresolved = 0;
};

// Checks one accepted (complete) result against the simulator's ground
// truth. `salts` is how many per-packet/per-flow seeds to union into the
// ECMP-feasible path set.
OracleReport check_against_truth(const core::ReverseTraceroute& result,
                                 const sim::Network& network,
                                 std::uint64_t salts = 8);

}  // namespace revtr::analysis
