// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic decision in the simulator, the topology generator, and the
// benchmark harnesses flows from an explicitly seeded Rng so that every test
// and every experiment is reproducible bit-for-bit (DESIGN.md §4.4). We use
// xoshiro256** seeded via splitmix64; both are tiny, fast, and have
// well-understood statistical behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace revtr::util {

// splitmix64 step; used for seeding and for cheap stateless hashing of ids.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stateless mix of several integers into one hash. Used for deterministic,
// direction-sensitive routing tiebreaks (DESIGN.md §4.1).
constexpr std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c = 0) noexcept {
  return splitmix64(splitmix64(splitmix64(a) ^ b) ^ c);
}

// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = splitmix64(x);
      s = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    REVTR_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    REVTR_DCHECK(lo <= hi);
    // Width and offset arithmetic stay in uint64 so that extreme bounds
    // (e.g. lo < 0 <= hi with hi - lo exceeding int64) cannot overflow
    // signed arithmetic, which would be UB; uint64 -> int64 conversion of
    // the final value is well-defined two's complement in C++20.
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t offset = width == 0 ? (*this)() : below(width);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  // Pareto-distributed value with the given minimum and shape alpha.
  double pareto(double minimum, double alpha) noexcept;

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>(items));
  }

  // Sample k distinct elements (order randomized) from the input.
  template <typename T>
  std::vector<T> sample(std::span<const T> pool, std::size_t k) {
    std::vector<T> copy(pool.begin(), pool.end());
    k = std::min(k, copy.size());
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(copy[i], copy[i + below(copy.size() - i)]);
    }
    copy.resize(k);
    return copy;
  }

  template <typename T>
  std::vector<T> sample(const std::vector<T>& pool, std::size_t k) {
    return sample(std::span<const T>(pool), k);
  }

  // Pick one element uniformly. pool must be non-empty.
  template <typename T>
  const T& pick(std::span<const T> pool) noexcept {
    return pool[below(pool.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& pool) noexcept {
    return pool[below(pool.size())];
  }

  // Derive an independent child generator; used to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  Rng fork(std::string_view label) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace revtr::util
