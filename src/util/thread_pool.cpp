#include "util/thread_pool.h"

#include <stdexcept>

namespace revtr::util {

namespace {
// Written once by each pool thread on startup, read by current_worker().
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  REVTR_CHECK(workers >= 1);
  REVTR_CHECK(queue_capacity >= 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::current_worker() noexcept { return t_worker_index; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    // While-loop wait (not the predicate overload): the analysis tracks the
    // capability across wait()'s release/reacquire, but a predicate lambda
    // reading guarded members would not inherit the REQUIRES context.
    while (queue_.size() >= queue_capacity_ && !shutting_down_) {
      not_full_.wait(lock);
    }
    if (shutting_down_) {
      // A submitter parked on a full queue can legitimately lose the race
      // with the destructor (the not_full_ notify that woke it was the
      // shutdown broadcast). That is a recoverable caller error, not an
      // internal invariant: throw so the submitter unwinds instead of
      // aborting the process mid-shutdown.
      throw std::runtime_error("ThreadPool::submit after shutdown began");
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutting_down_) not_empty_.wait(lock);
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // A packaged_task stores any exception in its future; nothing escapes
    // into the worker loop.
    task();
  }
}

}  // namespace revtr::util
