// Container and query interface for the generated Internet.
//
// Owns all ASes, routers, links, prefixes, and hosts, plus the lookup
// structures the simulator and the measurement system share: interface
// address resolution, longest-prefix matching to BGP prefixes, and the
// border-link table between adjacent ASes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "topology/types.h"
#include "util/flat_map.h"

namespace revtr::topology {

namespace detail {
class BuildContext;
}  // namespace detail

class Topology {
 public:
  // --- Entity access. ---
  std::size_t num_ases() const noexcept { return ases_.size(); }
  std::size_t num_routers() const noexcept { return routers_.size(); }
  std::size_t num_links() const noexcept { return links_.size(); }
  std::size_t num_prefixes() const noexcept { return prefixes_.size(); }
  std::size_t num_hosts() const noexcept { return hosts_.size(); }

  const AsNode& as_at(AsIndex index) const { return ases_[index]; }
  const Router& router(RouterId id) const { return routers_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }
  const BgpPrefix& prefix(PrefixId id) const { return prefixes_[id]; }
  const Host& host(HostId id) const { return hosts_[id]; }

  std::span<const AsNode> ases() const noexcept { return ases_; }
  std::span<const Router> routers() const noexcept { return routers_; }
  std::span<const Link> links() const noexcept { return links_; }
  std::span<const BgpPrefix> prefixes() const noexcept { return prefixes_; }
  std::span<const Host> hosts() const noexcept { return hosts_; }

  // --- ASN <-> dense index. ---
  AsIndex index_of(Asn asn) const { return asn_to_index_.at(asn); }
  bool has_as(Asn asn) const { return asn_to_index_.contains(asn); }
  const AsNode& as_node(Asn asn) const { return ases_[index_of(asn)]; }

  // --- Address resolution. ---
  // Which router interface owns this address (loopback, /30 end, gateway).
  std::optional<InterfaceOwner> interface_at(net::Ipv4Addr addr) const;
  // Which host owns this address (primary or alias interface).
  std::optional<HostId> host_at(net::Ipv4Addr addr) const;
  // Longest-prefix match against announced BGP prefixes.
  std::optional<PrefixId> prefix_of(net::Ipv4Addr addr) const;
  // Origin AS of the longest matching prefix.
  std::optional<Asn> as_of(net::Ipv4Addr addr) const;

  // --- Router-level navigation. ---
  // The interface address `router` uses when sending over `link`.
  net::Ipv4Addr egress_addr(RouterId router, LinkId link) const;
  // The router on the far side of `link` from `router`.
  RouterId far_end(RouterId router, LinkId link) const;
  // First interdomain link connecting two adjacent ASes, if any.
  std::optional<LinkId> border_link(Asn from, Asn to) const;
  // All parallel interconnects between two adjacent ASes. Large networks
  // peer at multiple locations; which one a packet crosses depends on the
  // destination, which is a real source of router-level path asymmetry.
  std::span<const LinkId> border_links(Asn from, Asn to) const;
  // Gateway address of `router` within customer prefix `prefix` (the address
  // it stamps when forwarding into the destination subnet), if allocated.
  std::optional<net::Ipv4Addr> gateway_addr(RouterId router,
                                            PrefixId prefix) const;

  // --- Measurement inventory. ---
  std::span<const HostId> vantage_points() const noexcept { return vps_; }
  std::span<const HostId> vantage_points_2016() const noexcept {
    return vps_2016_;
  }
  std::span<const HostId> probe_hosts() const noexcept { return probe_hosts_; }
  // All non-VP, non-probe hosts of a prefix (the "hitlist" entries).
  std::span<const HostId> hosts_in_prefix(PrefixId prefix) const;

  // Probe-able addresses inside a prefix: host addresses first, then router
  // loopbacks and link interfaces of the origin AS that fall inside it.
  // This is the hitlist view for infrastructure prefixes, whose
  // "destinations" are routers.
  std::vector<net::Ipv4Addr> addresses_in_prefix(PrefixId prefix,
                                                 std::size_t limit) const;

  // Ground truth for evaluation: all interface addresses of a router
  // (loopback, link interfaces, gateways, private alias).
  std::vector<net::Ipv4Addr> router_addresses(RouterId id) const;
  // Ground-truth alias test: do two addresses belong to the same router?
  bool same_router(net::Ipv4Addr a, net::Ipv4Addr b) const;

 private:
  friend class TopologyBuilder;
  friend class detail::BuildContext;

  std::vector<AsNode> ases_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<BgpPrefix> prefixes_;
  std::vector<Host> hosts_;

  // Open-addressing tables (util::FlatMap): these are the per-packet lookup
  // maps on the simulator's forwarding hot path.
  util::FlatMap<Asn, AsIndex> asn_to_index_;
  util::FlatMap<net::Ipv4Addr, InterfaceOwner> interface_map_;
  util::FlatMap<net::Ipv4Addr, HostId> host_map_;
  net::PrefixTrie<PrefixId> prefix_trie_;
  // (from_as << 32 | to_as) -> parallel interconnect links.
  util::FlatMap<std::uint64_t, std::vector<LinkId>> border_links_;
  // (router << 32 | prefix) -> gateway address.
  util::FlatMap<std::uint64_t, net::Ipv4Addr> gateway_map_;
  std::vector<std::vector<net::Ipv4Addr>> router_gateways_;  // By RouterId.
  std::vector<std::vector<HostId>> prefix_hosts_;  // Indexed by PrefixId.

  std::vector<HostId> vps_;
  std::vector<HostId> vps_2016_;
  std::vector<HostId> probe_hosts_;
};

}  // namespace revtr::topology
