#include "topology/as_graph.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace revtr::topology {

namespace {

// Tracks pairs already related so we never create a second (conflicting)
// relationship between the same two ASes.
class PairSet {
 public:
  bool insert(Asn a, Asn b) {
    if (a > b) std::swap(a, b);
    return pairs_.insert((std::uint64_t{a} << 32) | b).second;
  }
  bool contains(Asn a, Asn b) const {
    if (a > b) std::swap(a, b);
    return pairs_.contains((std::uint64_t{a} << 32) | b);
  }

 private:
  std::unordered_set<std::uint64_t> pairs_;
};

void add_provider(std::vector<AsNode>& ases, PairSet& pairs, AsIndex customer,
                  AsIndex provider) {
  if (!pairs.insert(ases[customer].asn, ases[provider].asn)) return;
  ases[customer].providers.push_back(ases[provider].asn);
  ases[provider].customers.push_back(ases[customer].asn);
}

void add_peer(std::vector<AsNode>& ases, PairSet& pairs, AsIndex a,
              AsIndex b) {
  if (a == b) return;
  if (!pairs.insert(ases[a].asn, ases[b].asn)) return;
  ases[a].peers.push_back(ases[b].asn);
  ases[b].peers.push_back(ases[a].asn);
}

// Preferential choice among candidate indices, weighted 1 + #customers so
// large providers attract more customers (heavy-tailed degree, like the
// real AS graph whose cone sizes Fig 8b plots against).
AsIndex preferential_pick(const std::vector<AsNode>& ases,
                          const std::vector<AsIndex>& candidates,
                          util::Rng& rng) {
  std::uint64_t total = 0;
  for (AsIndex c : candidates) total += 1 + ases[c].customers.size();
  std::uint64_t roll = rng.below(total);
  for (AsIndex c : candidates) {
    const std::uint64_t w = 1 + ases[c].customers.size();
    if (roll < w) return c;
    roll -= w;
  }
  return candidates.back();
}

}  // namespace

std::vector<AsNode> generate_as_graph(const TopologyConfig& config,
                                      util::Rng& rng) {
  const std::size_t n = std::max<std::size_t>(config.num_ases, 3);
  const std::size_t t1 = std::min(config.num_tier1, n - 2);
  const std::size_t transit_count = std::min(
      n - t1 - 1,
      static_cast<std::size_t>(
          static_cast<double>(n - t1) * config.transit_fraction));

  std::vector<AsNode> ases(n);
  for (std::size_t i = 0; i < n; ++i) {
    ases[i].asn = static_cast<Asn>(i + 1);
    if (i < t1) {
      ases[i].tier = AsTier::kTier1;
    } else if (i < t1 + transit_count) {
      ases[i].tier = AsTier::kTransit;
    } else {
      ases[i].tier = AsTier::kStub;
    }
  }

  PairSet pairs;

  // Tier-1 clique: settlement-free peering among all tier-1s.
  for (std::size_t a = 0; a < t1; ++a) {
    for (std::size_t b = a + 1; b < t1; ++b) {
      add_peer(ases, pairs, static_cast<AsIndex>(a), static_cast<AsIndex>(b));
    }
  }

  // Transits attach below tier-1s / earlier transits.
  std::vector<AsIndex> upstream_pool;
  for (std::size_t i = 0; i < t1; ++i) {
    upstream_pool.push_back(static_cast<AsIndex>(i));
  }
  for (std::size_t i = t1; i < t1 + transit_count; ++i) {
    const auto index = static_cast<AsIndex>(i);
    const int providers = rng.chance(0.7) ? 2 : 1;
    for (int p = 0; p < providers; ++p) {
      add_provider(ases, pairs, index,
                   preferential_pick(ases, upstream_pool, rng));
    }
    upstream_pool.push_back(index);
  }

  // NREN tagging among transits; NRENs peer widely ("cold potato" networks
  // that show up disproportionately on asymmetric routes, §6.2).
  std::vector<AsIndex> transits;
  for (std::size_t i = t1; i < t1 + transit_count; ++i) {
    transits.push_back(static_cast<AsIndex>(i));
  }
  const auto nren_count = static_cast<std::size_t>(
      static_cast<double>(transits.size()) * config.nren_fraction + 0.999);
  for (std::size_t k = 0; k < nren_count && k < transits.size(); ++k) {
    ases[transits[k]].category = AsCategory::kNren;
  }

  // Peering among transits.
  for (AsIndex a : transits) {
    const double peer_prob = ases[a].category == AsCategory::kNren
                                 ? std::min(1.0, config.transit_peer_prob * 3)
                                 : config.transit_peer_prob;
    for (AsIndex b : transits) {
      if (b <= a) continue;
      if (rng.chance(peer_prob / static_cast<double>(transits.size()) * 16)) {
        add_peer(ases, pairs, a, b);
      }
    }
  }

  // Stubs: 1-2 providers, preferential over transits and tier-1s.
  std::vector<AsIndex> provider_pool = upstream_pool;
  for (std::size_t i = t1 + transit_count; i < n; ++i) {
    const auto index = static_cast<AsIndex>(i);
    // ~6% of stubs are edu networks, preferring an NREN provider when one
    // exists (Fig 8b: M-Lab nodes in edu institutions transit NRENs).
    if (rng.chance(0.06)) {
      ases[index].category = AsCategory::kEdu;
      std::vector<AsIndex> nrens;
      for (AsIndex transit : transits) {
        if (ases[transit].category == AsCategory::kNren) {
          nrens.push_back(transit);
        }
      }
      if (!nrens.empty()) {
        add_provider(ases, pairs, index, rng.pick(nrens));
      }
    }
    if (ases[index].providers.empty() ||
        rng.chance(config.stub_multihome_prob)) {
      add_provider(ases, pairs, index,
                   preferential_pick(ases, provider_pool, rng));
    }
    if (rng.chance(config.stub_multihome_prob) &&
        ases[index].providers.size() < 2) {
      add_provider(ases, pairs, index,
                   preferential_pick(ases, provider_pool, rng));
    }
  }

  // Colo tagging: the best-connected transits act as colocation facilities
  // hosting "2020"-era vantage points (Insight 1.7). Tag generously so the
  // builder always finds enough distinct colo ASes.
  std::vector<AsIndex> by_degree = transits;
  std::sort(by_degree.begin(), by_degree.end(), [&](AsIndex a, AsIndex b) {
    return ases[a].degree() > ases[b].degree();
  });
  const std::size_t colo_count =
      std::min(by_degree.size(), std::max<std::size_t>(config.num_vps, 8));
  for (std::size_t k = 0; k < colo_count; ++k) {
    if (ases[by_degree[k]].category == AsCategory::kGeneric) {
      ases[by_degree[k]].category = AsCategory::kColo;
    }
  }

  // AS-wide behaviours.
  for (auto& node : ases) {
    node.allows_spoofed_egress = rng.chance(config.vp_as_allows_spoofing);
    node.filters_ip_options =
        node.tier == AsTier::kStub && rng.chance(config.as_filters_options);
    node.source_sensitive = rng.chance(config.as_source_sensitive);
  }

  return ases;
}

}  // namespace revtr::topology
