#include "server/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <span>
#include <unordered_map>
#include <utility>

#include "core/request_task.h"
#include "probing/prober.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/json.h"

namespace revtr::server {

namespace {

// One daemon per process for signal routing (install_signal_handlers).
std::atomic<ServerDaemon*> g_signal_daemon{nullptr};

void drain_signal_handler(int /*signum*/) {
  // Async-signal-safe: request_drain is an atomic store + one write().
  ServerDaemon* daemon = g_signal_daemon.load(std::memory_order_acquire);
  if (daemon != nullptr) daemon->request_drain();
}

}  // namespace

// One worker's private measurement stack, mirroring the parallel campaign
// driver: members reference earlier members, so stacks live behind
// unique_ptr and never move. All stacks share one EngineCaches and one
// network seed — a request measures the same path on any worker.
struct ServerDaemon::WorkerStack {
  sim::Network network;
  probing::Prober prober;
  core::RevtrEngine engine;

  WorkerStack(eval::Lab& lab, const core::EngineConfig& config,
              std::uint64_t net_seed,
              std::shared_ptr<core::EngineCaches> caches)
      : network(lab.topo, lab.plane, net_seed),
        prober(network),
        engine(prober, lab.topo, lab.atlas, lab.ingress, lab.ip2as,
               lab.relationships, config, net_seed) {
    engine.set_shared_caches(std::move(caches));
  }
};

// Per-connection state, owned exclusively by the net thread (no locks).
struct ServerDaemon::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  // Pull mode: encoded RESULT frames buffered until the client POLLs.
  std::deque<std::vector<std::uint8_t>> pull_queue;
  bool authed = false;
  bool push = true;
  bool awaiting_drain = false;
  bool closed = false;
  service::UserId tenant = 0;
  // Remote mode: this connection is a registered VP agent (AGENT_REGISTER
  // accepted); `agent` is its scheduler id. drain_sent keeps the drained
  // net loop from re-sending AGENT_DRAIN every poll iteration.
  bool is_agent = false;
  bool drain_sent = false;
  sched::ProbeScheduler::AgentId agent = 0;
};

ServerDaemon::ServerDaemon(ServerOptions options)
    : options_(std::move(options)), admission_(options_.admission) {}

ServerDaemon::~ServerDaemon() {
  stop();
  if (g_signal_daemon.load(std::memory_order_acquire) == this) {
    install_signal_handlers(nullptr);
  }
}

std::int64_t ServerDaemon::now_us() const {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  return (ns - epoch_ns_) / 1000;
}

void ServerDaemon::wake_net() noexcept {
  if (wake_pipe_[1] < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t rc = write(wake_pipe_[1], &byte, 1);
}

void ServerDaemon::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  wake_net();
}

void ServerDaemon::install_signal_handlers(ServerDaemon* daemon) {
  g_signal_daemon.store(daemon, std::memory_order_release);
  if (daemon != nullptr) {
    std::signal(SIGTERM, drain_signal_handler);
    std::signal(SIGINT, drain_signal_handler);
  } else {
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
  }
}

bool ServerDaemon::start() {
  REVTR_CHECK(!started_);
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();

  // --- Measurement stack: built once, hot for the daemon's lifetime. ---
  lab_ = std::make_unique<eval::Lab>(options_.topo, options_.engine,
                                     options_.seed);
  // Every ingress plan is surveyed now so no worker ever triggers an
  // on-demand discovery mid-request (same rule as the campaign driver).
  lab_->precompute_all_ingresses();

  service_metrics_ = std::make_unique<service::ServiceMetrics>(registry_);
  engine_metrics_ = std::make_unique<core::EngineMetrics>(registry_);
  probe_metrics_ = std::make_unique<probing::ProbeMetrics>(registry_);
  sched_metrics_ = std::make_unique<sched::SchedMetrics>(registry_);
  lab_->prober.set_metrics(&*probe_metrics_);

  service_ = std::make_unique<service::RevtrService>(lab_->engine, lab_->atlas,
                                                     lab_->prober, lab_->topo);
  service_->set_metrics(&*service_metrics_);

  const auto& vps = lab_->topo.vantage_points();
  const std::size_t want_sources =
      std::min(std::max<std::size_t>(options_.sources, 1), vps.size());
  for (std::size_t i = 0;
       i < vps.size() && source_hosts_.size() < want_sources; ++i) {
    if (service_->add_source(vps[i], options_.atlas_size, lab_->rng)) {
      source_hosts_.push_back(vps[i]);
    }
  }
  if (source_hosts_.empty()) {
    std::fprintf(stderr, "revtr_serverd: no vantage point bootstrapped\n");
    return false;
  }

  tenant_configs_ = options_.tenants;
  if (tenant_configs_.empty()) tenant_configs_.emplace_back();
  for (const TenantConfig& tenant : tenant_configs_) {
    const service::UserId id = service_->add_user(tenant.name, tenant.limits);
    tenant_ids_.push_back(id);
    {
      const util::MutexLock lock(mu_);
      admission_.add_tenant(id, tenant.bucket);
    }
    {
      const util::MutexLock lock(mu_);
      queue_.set_weight(id, tenant.weight);
    }
    if (tenant_metrics_.size() <= id) tenant_metrics_.resize(id + 1);
    tenant_metrics_[id].requests = &registry_.counter(
        std::string("revtr_server_tenant_requests_total{tenant=\"") +
        tenant.name + "\"}");
  }

  scheduler_ = std::make_unique<sched::ProbeScheduler>(options_.sched);
  scheduler_->set_metrics(&*sched_metrics_);
  if (options_.sched_audit != nullptr) {
    scheduler_->set_audit(options_.sched_audit);
  }

  caches_ = std::make_shared<core::EngineCaches>();
  const std::uint64_t net_seed = util::mix_hash(options_.seed, 0x6e7ULL);
  const std::size_t workers = std::max<std::size_t>(options_.workers, 1);
  for (std::size_t w = 0; w < workers; ++w) {
    stacks_.push_back(std::make_unique<WorkerStack>(*lab_, options_.engine,
                                                    net_seed, caches_));
    stacks_.back()->prober.set_metrics(&*probe_metrics_);
    stacks_.back()->engine.set_metrics(&*engine_metrics_);
  }

  // Metric handles resolved once: the registry mutex (rank 10) must never
  // be taken under the daemon mutex (rank 110).
  requests_total_ = &registry_.counter("revtr_server_requests_total");
  completed_total_ = &registry_.counter("revtr_server_completed_total");
  sheds_total_ = &registry_.counter("revtr_server_sheds_total");
  deadline_miss_total_ =
      &registry_.counter("revtr_server_deadline_miss_total");
  connections_total_ = &registry_.counter("revtr_server_connections_total");
  protocol_errors_total_ =
      &registry_.counter("revtr_server_protocol_errors_total");
  for (std::uint8_t r = 0; r <= kMaxRejectReason; ++r) {
    reject_reasons_.push_back(&registry_.counter(
        std::string("revtr_server_rejects_total{reason=\"") +
        std::string(to_string(static_cast<RejectReason>(r))) + "\"}"));
  }
  wall_latency_us_ = &registry_.histogram("revtr_server_request_wall_us");
  sim_latency_us_ = &registry_.histogram("revtr_server_request_sim_us");
  queue_depth_ = &registry_.gauge("revtr_server_queue_depth");
  inflight_ = &registry_.gauge("revtr_server_inflight");

  // --- Socket + self-pipe. ---
  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    std::fprintf(stderr, "revtr_serverd: pipe2: %s\n", std::strerror(errno));
    return false;
  }
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "revtr_serverd: socket: %s\n", std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "revtr_serverd: socket path too long: %s\n",
                 options_.socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    std::fprintf(stderr, "revtr_serverd: bind %s: %s\n",
                 options_.socket_path.c_str(), std::strerror(errno));
    return false;
  }
  if (listen(listen_fd_, 64) != 0) {
    std::fprintf(stderr, "revtr_serverd: listen: %s\n", std::strerror(errno));
    return false;
  }

  threads_.emplace_back([this] { net_loop(); });
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
  started_ = true;
  return true;
}

void ServerDaemon::wait_until_drained() {
  util::MutexLock lock(mu_);
  while (!drained_ && !stopping_) drained_cv_.wait(lock);
}

void ServerDaemon::stop() {
  if (!started_) return;
  request_drain();
  wait_until_drained();
  {
    const util::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  drained_cv_.notify_all();
  wake_net();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  unlink(options_.socket_path.c_str());
  started_ = false;
}

bool ServerDaemon::draining() const {
  const util::MutexLock lock(mu_);
  return draining_;
}

ServerCounters ServerDaemon::counters() const {
  const util::MutexLock lock(mu_);
  return counters_;
}

sched::SchedulerStats ServerDaemon::sched_stats() const {
  return scheduler_ ? scheduler_->stats() : sched::SchedulerStats{};
}

void ServerDaemon::set_worker_hold(bool hold) {
  {
    const util::MutexLock lock(mu_);
    worker_hold_ = hold;
  }
  work_cv_.notify_all();
}

std::string ServerDaemon::build_stats_json() {
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  ServerCounters c;
  std::size_t queued = 0;
  std::size_t inflight = 0;
  bool draining = false;
  bool drained = false;
  {
    const util::MutexLock lock(mu_);
    c = counters_;
    queued = queued_;
    inflight = inflight_count_;
    draining = draining_;
    drained = drained_;
  }
  util::Json json = util::Json::object();
  json["connections"] = c.connections;
  json["accepted"] = c.accepted;
  json["rejected"] = c.rejected;
  json["completed"] = c.completed;
  json["shed"] = c.shed_queued;
  json["deadline_missed"] = c.deadline_missed;
  json["protocol_errors"] = c.protocol_errors;
  json["queued"] = static_cast<std::uint64_t>(queued);
  json["inflight"] = static_cast<std::uint64_t>(inflight);
  json["draining"] = draining;
  json["drained"] = drained;
  if (const auto* wall =
          snapshot.find_histogram("revtr_server_request_wall_us")) {
    json["wall_count"] = wall->count;
    json["wall_p50_us"] = obs::histogram_quantile(*wall, 0.5);
    json["wall_p99_us"] = obs::histogram_quantile(*wall, 0.99);
    json["wall_p999_us"] = obs::histogram_quantile(*wall, 0.999);
  }
  if (const auto* sim =
          snapshot.find_histogram("revtr_server_request_sim_us")) {
    json["sim_p50_us"] = obs::histogram_quantile(*sim, 0.5);
    json["sim_p99_us"] = obs::histogram_quantile(*sim, 0.99);
  }
  return json.dump();
}

// --- Net thread. ------------------------------------------------------------

namespace {

// Appends the encoded form of `message` to the connection's output buffer.
void append_frame(std::vector<std::uint8_t>& out, const Message& message) {
  const auto frame = encode_frame(message);
  out.insert(out.end(), frame.begin(), frame.end());
}

}  // namespace

void ServerDaemon::handle_message(Conn& conn, Message message) {
  if (const Hello* hello = std::get_if<Hello>(&message)) {
    if (hello->proto_version != kProtoVersion) {
      append_frame(conn.out, HelloErr{RejectReason::kBadRequest});
      reject_reasons_[static_cast<std::size_t>(RejectReason::kBadRequest)]
          ->add();
      return;
    }
    std::size_t tenant_index = tenant_ids_.size();
    for (std::size_t i = 0; i < tenant_configs_.size(); ++i) {
      if (tenant_configs_[i].api_key == hello->api_key) {
        tenant_index = i;
        break;
      }
    }
    if (tenant_index >= tenant_ids_.size()) {
      append_frame(conn.out, HelloErr{RejectReason::kBadApiKey});
      reject_reasons_[static_cast<std::size_t>(RejectReason::kBadApiKey)]
          ->add();
      return;
    }
    conn.authed = true;
    conn.push = hello->push_results;
    conn.tenant = tenant_ids_[tenant_index];
    HelloOk ok;
    ok.tenant = conn.tenant;
    ok.server_now_us = now_us();
    ok.tenant_name = tenant_configs_[tenant_index].name;
    append_frame(conn.out, ok);
    return;
  }

  if (const Submit* submit = std::get_if<Submit>(&message)) {
    std::optional<RejectReason> reject;
    if (!conn.authed) {
      reject = RejectReason::kNotAuthenticated;
    } else if (submit->dest_index >= lab_->topo.probe_hosts().size() ||
               submit->source_index >= source_hosts_.size()) {
      reject = RejectReason::kBadRequest;
    }
    if (!reject.has_value()) {
      // Both samples are taken before mu_: the scheduler lock is rank 60,
      // the daemon mutex rank 110 — never nested.
      const std::size_t backlog = scheduler_->backlog();
      const std::int64_t now = now_us();
      const util::MutexLock lock(mu_);
      AdmissionLoad load;
      load.queued = queued_;
      load.inflight = inflight_count_;
      load.sched_backlog = backlog;
      load.draining = draining_;
      reject = admission_.decide(conn.tenant, submit->deadline_us, now, load);
      if (!reject.has_value()) {
        switch (service_->try_charge_request(conn.tenant)) {
          case service::RevtrService::QuotaDecision::kCharged:
            break;
          case service::RevtrService::QuotaDecision::kUnknownUser:
            reject = RejectReason::kBadRequest;
            break;
          case service::RevtrService::QuotaDecision::kQuotaExhausted:
            reject = RejectReason::kQuotaExhausted;
            break;
          case service::RevtrService::QuotaDecision::kProbeBudgetExhausted:
            reject = RejectReason::kProbeBudgetExhausted;
            break;
        }
      }
      if (!reject.has_value()) {
        QueuedRequest queued;
        queued.index = next_request_index_++;
        queued.conn_id = conn.id;
        queued.request_id = submit->request_id;
        queued.tenant = conn.tenant;
        queued.destination = lab_->topo.probe_hosts()[submit->dest_index];
        queued.source = source_hosts_[submit->source_index];
        queued.priority = submit->priority;
        queued.deadline_us = submit->deadline_us;
        queued.accepted_us = now;
        queue_.push(static_cast<std::size_t>(submit->priority), conn.tenant,
                    queued);
        ++queued_;
        ++counters_.accepted;
        queue_depth_->set(static_cast<std::int64_t>(queued_));
      } else {
        ++counters_.rejected;
      }
    } else {
      const util::MutexLock lock(mu_);
      ++counters_.rejected;
    }
    if (reject.has_value()) {
      reject_reasons_[static_cast<std::size_t>(*reject)]->add();
      append_frame(conn.out, SubmitErr{submit->request_id, *reject});
    } else {
      requests_total_->add();
      tenant_metrics_[conn.tenant].requests->add();
      work_cv_.notify_one();
      append_frame(conn.out, SubmitOk{submit->request_id});
    }
    return;
  }

  if (const Poll* poll_msg = std::get_if<Poll>(&message)) {
    std::uint32_t returned = 0;
    while (returned < poll_msg->max_results && !conn.pull_queue.empty()) {
      conn.out.insert(conn.out.end(), conn.pull_queue.front().begin(),
                      conn.pull_queue.front().end());
      conn.pull_queue.pop_front();
      ++returned;
    }
    PollDone done;
    done.returned = returned;
    done.pending = static_cast<std::uint32_t>(
        std::min<std::size_t>(conn.pull_queue.size(), UINT32_MAX));
    append_frame(conn.out, done);
    return;
  }

  if (std::holds_alternative<Stats>(message)) {
    append_frame(conn.out, StatsReply{build_stats_json()});
    return;
  }

  if (std::holds_alternative<Drain>(message)) {
    {
      const util::MutexLock lock(mu_);
      draining_ = true;
      if (queued_ == 0 && inflight_count_ == 0 && !drained_) {
        drained_ = true;
        drained_cv_.notify_all();
      }
    }
    work_cv_.notify_all();
    conn.awaiting_drain = true;
    return;
  }

  // --- Controller <-> VP-agent frames (DESIGN.md §15). ---

  if (const AgentRegister* reg = std::get_if<AgentRegister>(&message)) {
    if (!options_.remote_probing || reg->proto_version != kProtoVersion ||
        conn.is_agent) {
      append_frame(conn.out, HelloErr{RejectReason::kBadRequest});
      reject_reasons_[static_cast<std::size_t>(RejectReason::kBadRequest)]
          ->add();
      return;
    }
    // Scheduler lock is rank 60, below mu_ (110): attach before taking mu_.
    const auto agent = scheduler_->attach_agent(reg->window, now_us());
    conn.is_agent = true;
    conn.agent = agent;
    {
      const util::MutexLock lock(mu_);
      agent_conns_.emplace_back(conn.id, agent);
    }
    // The REGISTER ack reuses HELLO_OK with the agent id in the tenant
    // field (agents are not tenants; see the frame grammar).
    HelloOk ok;
    ok.tenant = static_cast<std::uint32_t>(agent);
    ok.server_now_us = now_us();
    ok.tenant_name = reg->name;
    append_frame(conn.out, ok);
    work_cv_.notify_all();  // Workers may have demand waiting for an agent.
    return;
  }

  if (const AgentProbeResult* res = std::get_if<AgentProbeResult>(&message)) {
    if (conn.is_agent) {
      // Stale tickets (requeued off an expired agent) are dropped inside
      // deliver_assignment; nothing to do here either way.
      scheduler_->deliver_assignment(conn.agent, res->ticket, res->reply);
      work_cv_.notify_all();
      return;
    }
    // Fall through to the protocol-violation path below.
  } else if (const AgentHeartbeat* hb = std::get_if<AgentHeartbeat>(&message)) {
    (void)hb;
    if (conn.is_agent) {
      scheduler_->agent_heartbeat(conn.agent, now_us());
      return;
    }
  } else if (std::holds_alternative<AgentDrain>(message)) {
    if (conn.is_agent) {
      // The agent's parting message: it has flushed every result it will
      // ever send. Close; the net loop's close path detaches it.
      conn.closed = true;
      return;
    }
  }

  // Server->client message types arriving at the server are a protocol
  // violation, same as undecodable bytes.
  {
    const util::MutexLock lock(mu_);
    ++counters_.protocol_errors;
  }
  protocol_errors_total_->add();
  conn.closed = true;
}

void ServerDaemon::net_loop() {
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn_ids;
  std::array<std::uint8_t, 65536> buf;

  const auto protocol_error = [this](Conn& conn) {
    {
      const util::MutexLock lock(mu_);
      ++counters_.protocol_errors;
    }
    protocol_errors_total_->add();
    conn.closed = true;
  };

  const auto try_flush = [](Conn& conn) {
    std::size_t written = 0;
    while (written < conn.out.size()) {
      const ssize_t n = write(conn.fd, conn.out.data() + written,
                              conn.out.size() - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.closed = true;
      break;
    }
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(written));
  };

  for (;;) {
    // Convert a (possibly signal-context) drain request into the guarded
    // draining transition.
    if (drain_requested_.load(std::memory_order_acquire)) {
      {
        const util::MutexLock lock(mu_);
        draining_ = true;
        if (queued_ == 0 && inflight_count_ == 0 && !drained_) {
          drained_ = true;
          drained_cv_.notify_all();
        }
      }
      work_cv_.notify_all();
    }

    // Route completions produced by the workers to their connections.
    std::deque<Completion> completions;
    bool drained_now = false;
    bool stopping_now = false;
    {
      const util::MutexLock lock(mu_);
      std::swap(completions, completions_);
      drained_now = drained_;
      stopping_now = stopping_;
    }
    for (Completion& completion : completions) {
      const auto it = conns.find(completion.conn_id);
      if (it == conns.end() || it->second.closed) continue;  // Client left.
      Conn& conn = it->second;
      if (conn.push) {
        conn.out.insert(conn.out.end(), completion.frame.begin(),
                        completion.frame.end());
      } else {
        conn.pull_queue.push_back(std::move(completion.frame));
      }
    }
    if (drained_now) {
      ServerCounters c;
      {
        const util::MutexLock lock(mu_);
        c = counters_;
      }
      for (auto& [id, conn] : conns) {
        if (conn.closed) continue;
        // Tell each agent to finish up and part ways — once; drained_now
        // stays true on every later iteration.
        if (conn.is_agent && !conn.drain_sent) {
          append_frame(conn.out, AgentDrain{});
          conn.drain_sent = true;
        }
        if (!conn.awaiting_drain) continue;
        append_frame(conn.out, DrainDone{c.completed, c.shed_queued});
        conn.awaiting_drain = false;
      }
    }
    if (stopping_now) break;

    for (auto& [id, conn] : conns) {
      if (!conn.out.empty() && !conn.closed) try_flush(conn);
    }
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second.closed) {
        // A departing agent's in-flight assignments requeue for
        // reassignment (scheduler lock rank 60 — mu_ is not held here).
        if (it->second.is_agent) {
          scheduler_->detach_agent(it->second.agent);
          {
            const util::MutexLock lock(mu_);
            std::erase_if(agent_conns_, [&](const auto& entry) {
              return entry.first == it->first;
            });
          }
          work_cv_.notify_all();
        }
        close(it->second.fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [id, conn] : conns) {
      short events = POLLIN;
      if (!conn.out.empty()) events = static_cast<short>(events | POLLOUT);
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn_ids.push_back(id);
    }
    const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 250);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      // Drain the self-pipe; the actual work happens at the loop top.
      while (read(wake_pipe_[0], buf.data(), buf.size()) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        Conn conn;
        conn.fd = fd;
        conn.id = next_conn_id++;
        conns.emplace(conn.id, std::move(conn));
        {
          const util::MutexLock lock(mu_);
          ++counters_.connections;
        }
        connections_total_->add();
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const auto it = conns.find(fd_conn_ids[i - 2]);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        conn.closed = true;
        continue;
      }
      if ((fds[i].revents & POLLIN) != 0) {
        for (;;) {
          const ssize_t n = read(conn.fd, buf.data(), buf.size());
          if (n > 0) {
            conn.in.insert(conn.in.end(), buf.data(), buf.data() + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          conn.closed = true;  // EOF or hard error.
          break;
        }
        // Decode every complete frame in the input buffer; partial frames
        // wait for more bytes (stream reassembly is not an error).
        std::size_t consumed = 0;
        while (!conn.closed) {
          const auto avail =
              std::span<const std::uint8_t>(conn.in).subspan(consumed);
          if (avail.size() < kFrameHeaderSize) break;
          FrameError error = FrameError::kNone;
          const auto header = decode_frame_header(avail, &error);
          if (!header.has_value()) {
            protocol_error(conn);
            break;
          }
          if (avail.size() < kFrameHeaderSize + header->payload_len) break;
          auto decoded = decode_payload(
              header->type,
              avail.subspan(kFrameHeaderSize, header->payload_len), &error);
          consumed += kFrameHeaderSize + header->payload_len;
          if (!decoded.has_value()) {
            protocol_error(conn);
            break;
          }
          handle_message(conn, *std::move(decoded));
        }
        if (consumed > 0) {
          conn.in.erase(conn.in.begin(),
                        conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
        }
      }
      if (!conn.closed && !conn.out.empty()) try_flush(conn);
    }
  }

  for (auto& [id, conn] : conns) close(conn.fd);
}

// --- Workers. ---------------------------------------------------------------

void ServerDaemon::worker_loop(std::size_t w) {
  WorkerStack& stack = *stacks_[w];

  // A task holds references into its ActiveRequest for the whole
  // measurement; unordered_map keeps element addresses stable.
  struct ActiveRequest {
    QueuedRequest meta;
    util::SimClock clock;
    util::Rng rng;
    std::unique_ptr<core::RequestTask> task;
    explicit ActiveRequest(std::uint64_t rng_seed) : rng(rng_seed) {}
  };
  std::unordered_map<std::uint64_t, ActiveRequest> active;

  // Folds one finished request into the daemon state and queues its RESULT
  // frame. Everything passed in is computed outside mu_.
  const auto deliver = [this](const QueuedRequest& meta, Message result,
                              bool shed, bool refund, bool missed,
                              const core::ReverseTraceroute* measured,
                              std::int64_t wall_us) {
    auto frame = encode_frame(result);
    {
      const util::MutexLock lock(mu_);
      if (refund) service_->refund_request(meta.tenant);
      if (measured != nullptr) {
        service_->charge_probes_for(meta.tenant, *measured);
        admission_.observe_latency(wall_us);
      }
      if (shed) {
        ++counters_.shed_queued;
      } else {
        ++counters_.completed;
        if (missed) ++counters_.deadline_missed;
      }
      --inflight_count_;
      inflight_->set(static_cast<std::int64_t>(inflight_count_));
      completions_.push_back(Completion{meta.conn_id, std::move(frame)});
      if (draining_ && queued_ == 0 && inflight_count_ == 0 && !drained_) {
        drained_ = true;
        drained_cv_.notify_all();
      }
    }
    if (shed) {
      sheds_total_->add();
    } else {
      completed_total_->add();
      if (missed) deadline_miss_total_->add();
      wall_latency_us_->record(
          static_cast<std::uint64_t>(std::max<std::int64_t>(wall_us, 0)));
    }
    wake_net();
  };

  const auto finalize = [this, &deliver](ActiveRequest& request) {
    const core::ReverseTraceroute measured = request.task->take_result();
    const std::int64_t done_us = now_us();
    const std::int64_t wall_us = done_us - request.meta.accepted_us;
    const bool missed = request.meta.deadline_us != 0 &&
                        done_us > request.meta.deadline_us;
    Result result;
    result.request_id = request.meta.request_id;
    result.status = measured.status;
    result.deadline_missed = missed;
    result.sim_latency_us = measured.span.duration();
    result.probes = measured.probes.total();
    result.coalesced_probes = measured.coalesced_probes;
    for (const auto& hop : measured.hops) {
      if (result.hops.size() >= kMaxResultHops) break;
      ResultHop out_hop;
      out_hop.addr = hop.addr;
      out_hop.source = hop.source;
      result.hops.push_back(out_hop);
    }
    sim_latency_us_->record(
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            measured.span.duration(), 0)));
    deliver(request.meta, std::move(result), /*shed=*/false,
            /*refund=*/!measured.complete(), missed, &measured, wall_us);
  };

  for (;;) {
    std::vector<QueuedRequest> popped;
    {
      util::MutexLock lock(mu_);
      for (;;) {
        if (!worker_hold_) {
          while (queued_ > 0 && active.size() + popped.size() <
                                    options_.max_inflight_per_worker) {
            auto next = queue_.pop();
            if (!next.has_value()) break;
            popped.push_back(*std::move(next));
            --queued_;
          }
        }
        if (!popped.empty() || !active.empty()) break;
        if (stopping_) return;
        if (draining_ && queued_ == 0) return;
        work_cv_.wait(lock);
      }
      inflight_count_ += popped.size();
      queue_depth_->set(static_cast<std::int64_t>(queued_));
      inflight_->set(static_cast<std::int64_t>(inflight_count_));
    }

    for (QueuedRequest& meta : popped) {
      const std::int64_t now = now_us();
      if (meta.deadline_us != 0 && now >= meta.deadline_us) {
        // Deadline expired while queued: shed without measuring and hand
        // the request-count charge back (no probes were spent).
        Result result;
        result.request_id = meta.request_id;
        result.status = core::RevtrStatus::kUnreachable;
        result.shed = true;
        deliver(meta, std::move(result), /*shed=*/true, /*refund=*/true,
                /*missed=*/false, nullptr, 0);
        continue;
      }
      auto [it, inserted] = active.try_emplace(
          meta.index, util::mix_hash(options_.seed, meta.index, 0xca3aULL));
      REVTR_CHECK(inserted);
      ActiveRequest& request = it->second;
      request.meta = meta;
      request.task = stack.engine.start_request(meta.destination, meta.source,
                                                request.clock, request.rng);
      const auto demands = request.task->advance();
      if (request.task->done()) {  // Atlas hit or trivial request.
        finalize(request);
        active.erase(it);
        continue;
      }
      scheduler_->submit(meta.index, w, {demands.begin(), demands.end()});
    }

    if (active.empty()) continue;
    sched::ProbeScheduler::PumpResult pumped;
    if (options_.remote_probing) {
      pumped.issued = dispatch_to_agents();
    } else {
      pumped = scheduler_->pump(stack.prober);
    }
    auto ready = scheduler_->collect_ready(w);
    for (auto& resolved : ready) {
      const auto it = active.find(resolved.task);
      REVTR_CHECK(it != active.end());
      ActiveRequest& request = it->second;
      request.task->supply(resolved.outcomes);
      const auto demands = request.task->advance();
      if (request.task->done()) {
        finalize(request);
        active.erase(it);
        continue;
      }
      scheduler_->submit(resolved.task, w, {demands.begin(), demands.end()});
    }
    if (ready.empty() && pumped.issued == 0) {
      // Our outcomes are in another worker's pump or throttled until the
      // next round's token refill (remote mode: in flight on an agent).
      // Yield rather than spin hot.
      std::this_thread::yield();
    }
  }
}

std::size_t ServerDaemon::dispatch_to_agents() {
  // Offline jobs (atlas refresh) never cross the wire: whichever worker
  // gets here first steals them onto its own thread.
  std::size_t moved = scheduler_->run_offline_jobs();

  if (options_.agent_timeout_us > 0) {
    const auto expired =
        scheduler_->expire_agents(now_us(), options_.agent_timeout_us);
    if (!expired.empty()) {
      const util::MutexLock lock(mu_);
      std::erase_if(agent_conns_, [&](const auto& entry) {
        return std::find(expired.begin(), expired.end(), entry.second) !=
               expired.end();
      });
    }
  }

  std::vector<std::pair<std::uint64_t, sched::ProbeScheduler::AgentId>> agents;
  {
    const util::MutexLock lock(mu_);
    agents = agent_conns_;
  }
  bool sent = false;
  for (const auto& [conn_id, agent] : agents) {
    // Scheduler (rank 60) and frame encoding both run outside mu_.
    const auto assignments = scheduler_->next_assignments(agent);
    if (assignments.empty()) continue;
    std::vector<Completion> frames;
    frames.reserve(assignments.size());
    for (const auto& assignment : assignments) {
      frames.push_back(Completion{
          conn_id, encode_frame(AgentProbe{assignment.ticket,
                                           assignment.spec})});
    }
    moved += assignments.size();
    sent = true;
    const util::MutexLock lock(mu_);
    for (auto& frame : frames) completions_.push_back(std::move(frame));
  }
  if (sent) wake_net();
  return moved;
}

}  // namespace revtr::server
