// Table 4: number and type of packets sent per system configuration,
// with the incremental improvements of the revtr 2.0 components:
//
//   revtr 2.0 = revtr 1.0 + ingress + cache - TS + RR atlas
//
// Paper result: revtr 2.0 sends 26% as many probes as revtr 1.0 (73K vs
// 275K for 8,093 reverse traceroutes), with the VP-selection technique
// contributing most of the savings.
#include <cstdio>

#include "ablation.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 4: packets sent, with incremental components",
                      setup);

  const auto chain = bench::table4_chain();
  std::vector<bench::AblationResult> results;
  for (const auto& config : chain) {
    results.push_back(bench::run_ablation(setup, config));
  }

  util::TextTable table({"Configuration", "RR", "Spoof RR", "TS", "Spoof TS",
                         "Traceroute", "Total", "vs revtr 1.0"});
  const double baseline =
      static_cast<double>(results.front().online.total());
  for (const auto& result : results) {
    const auto& c = result.online;
    table.add_row({result.label, util::cell_count(c.rr),
                   util::cell_count(c.spoofed_rr), util::cell_count(c.ts),
                   util::cell_count(c.spoofed_ts),
                   util::cell_count(c.traceroute_packets),
                   util::cell_count(c.total()),
                   util::cell_percent(
                       baseline == 0
                           ? 0.0
                           : static_cast<double>(c.total()) / baseline)});
  }
  std::printf("%s\n", table.render().c_str());

  // Mean spoofed-RR probes per measured path (Insight 1.8: 9 vs 29).
  util::TextTable rr_table(
      {"Configuration", "mean spoofed RR / path", "coverage"});
  for (const auto& result : results) {
    const double mean =
        result.attempted == 0
            ? 0.0
            : static_cast<double>(result.online.spoofed_rr) /
                  static_cast<double>(result.attempted);
    rr_table.add_row({result.label, util::cell(mean),
                      util::cell_percent(result.coverage())});
  }
  std::printf("%s\n", rr_table.render().c_str());
  std::printf(
      "paper: revtr 2.0 sends ~26%% of revtr 1.0's probes; ingress-based\n"
      "VP selection contributes the largest share of the savings.\n");
  return 0;
}
