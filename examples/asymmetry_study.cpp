// Path asymmetry mini-study (§6.2).
//
// Measures forward and reverse paths for a few hundred pairs and reports
// how symmetric the Internet (well, our synthetic one) actually is — the
// analysis that required 30M measurements and revtr 2.0's throughput in
// the paper, here reproduced end to end in seconds.
//
//   ./asymmetry_study [--ases=500] [--pairs=200]
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/revtr.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/stats.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  topology::TopologyConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.num_ases = static_cast<std::size_t>(flags.get_int("ases", 500));
  const auto pair_count =
      static_cast<std::size_t>(flags.get_int("pairs", 200));

  eval::Lab lab(config, core::EngineConfig::revtr2());
  const topology::HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 80);
  lab.precompute_all_ingresses();

  util::Rng rng(config.seed + 9);
  util::Rng alias_rng(config.seed + 3);
  const auto midar = alias::midar_like_aliases(lab.topo, alias_rng);
  const alias::SnmpResolver snmp(lab.topo);
  const eval::HopMatcher matcher(&midar, &snmp);

  std::vector<topology::HostId> dests;
  for (const auto prefix : lab.customer_prefixes()) {
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).ping_responsive) {
        dests.push_back(host);
        break;
      }
    }
  }
  rng.shuffle(dests);
  if (dests.size() > pair_count) dests.resize(pair_count);

  util::SimClock clock;
  util::Distribution as_overlap, router_overlap;
  util::Fraction as_symmetric;
  std::map<topology::Asn, std::size_t> asym_involvement;
  std::size_t asymmetric_pairs = 0, complete_pairs = 0;

  for (const auto dest : dests) {
    const auto reverse = lab.engine.measure(dest, source, clock);
    if (!reverse.complete()) continue;
    const auto forward =
        lab.prober.traceroute(source, lab.topo.host(dest).addr);
    if (!forward.reached) continue;
    ++complete_pairs;

    const auto forward_hops = forward.responsive_hops();
    const auto reverse_hops = reverse.ip_hops();
    const auto symmetry = eval::path_symmetry(forward_hops, reverse_hops,
                                              matcher, lab.ip2as);
    as_overlap.add(symmetry.as_fraction);
    router_overlap.add(symmetry.router_fraction);
    as_symmetric.tally(symmetry.as_fraction >= 1.0);

    if (symmetry.as_fraction < 1.0) {
      ++asymmetric_pairs;
      const auto fwd_as = lab.ip2as.as_path(forward_hops);
      auto rev_as = lab.ip2as.as_path(reverse_hops);
      std::reverse(rev_as.begin(), rev_as.end());
      for (const auto asn : fwd_as) {
        if (std::find(rev_as.begin(), rev_as.end(), asn) == rev_as.end()) {
          ++asym_involvement[asn];
        }
      }
    }
  }

  std::printf("bidirectional pairs measured: %zu\n", complete_pairs);
  std::printf("AS-level symmetric: %.0f%%  (paper: 53%%)\n",
              as_symmetric.value() * 100);
  if (!router_overlap.empty()) {
    std::printf("median router-level overlap: %.0f%%\n",
                router_overlap.median() * 100);
  }

  std::printf("\nASes most often part of an observed asymmetry:\n");
  std::vector<std::pair<topology::Asn, std::size_t>> ranked(
      asym_involvement.begin(), asym_involvement.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < ranked.size() && i < 8; ++i) {
    const auto& node = lab.topo.as_node(ranked[i].first);
    std::printf("  AS%-5u %-8s cone=%-5zu on %4.1f%% of asymmetric pairs\n",
                ranked[i].first, topology::to_string(node.tier).c_str(),
                lab.relationships.customer_cone_size(ranked[i].first),
                asymmetric_pairs == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(ranked[i].second) /
                          static_cast<double>(asymmetric_pairs));
  }
  std::printf(
      "\nLarge transit cones dominate asymmetric paths, as in Fig 8(b);\n"
      "with more NREN-flavored networks they would crowd the top-left.\n");
  return 0;
}
