// Clang Thread Safety Analysis vocabulary (DESIGN.md §11).
//
// Every mutex-owning class in src/ names its capability (REVTR_CAPABILITY on
// the lock type), attributes each guarded member to its mutex
// (REVTR_GUARDED_BY), and declares the locking contract of every entry point
// (REVTR_REQUIRES / REVTR_ACQUIRE / REVTR_RELEASE / REVTR_EXCLUDES). Under
// clang the attributes compile to -Wthread-safety checks (the `tsa` preset
// builds with -Wthread-safety -Wthread-safety-beta -Werror); under gcc they
// expand to nothing and the custom lint pass (tools/revtr_lint.cpp,
// lock-discipline rules) carries the enforcement.
//
// std::mutex/std::shared_mutex are not annotated types in libstdc++, so the
// analysis cannot see through them. util::Mutex and util::SharedMutex wrap
// them with annotated lock/unlock entry points, and the RAII guards below
// replace std::lock_guard/std::unique_lock/std::shared_lock/std::scoped_lock
// in src/ (the mutex-capability lint rule bans the raw std types there).
//
// Lock-acquisition order: the process-wide order is declared in
// tools/revtr_lint.cpp (lock_order_table) and follows the module layering
// DAG — util < obs < sched < atlas/vpselect < service — so a thread holding
// a higher-ranked lock never acquires a lower-ranked one. The lint
// lock-order pass rejects inversions; DESIGN.md §11 documents the model.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define REVTR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REVTR_THREAD_ANNOTATION(x)
#endif

// Type declarations.
#define REVTR_CAPABILITY(x) REVTR_THREAD_ANNOTATION(capability(x))
#define REVTR_SCOPED_CAPABILITY REVTR_THREAD_ANNOTATION(scoped_lockable)

// Data members.
#define REVTR_GUARDED_BY(x) REVTR_THREAD_ANNOTATION(guarded_by(x))
#define REVTR_PT_GUARDED_BY(x) REVTR_THREAD_ANNOTATION(pt_guarded_by(x))

// Function contracts.
#define REVTR_REQUIRES(...) \
  REVTR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REVTR_REQUIRES_SHARED(...) \
  REVTR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define REVTR_ACQUIRE(...) \
  REVTR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define REVTR_ACQUIRE_SHARED(...) \
  REVTR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define REVTR_RELEASE(...) \
  REVTR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define REVTR_RELEASE_SHARED(...) \
  REVTR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define REVTR_RELEASE_GENERIC(...) \
  REVTR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define REVTR_EXCLUDES(...) REVTR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define REVTR_TRY_ACQUIRE(...) \
  REVTR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define REVTR_RETURN_CAPABILITY(x) REVTR_THREAD_ANNOTATION(lock_returned(x))
#define REVTR_NO_THREAD_SAFETY_ANALYSIS \
  REVTR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace revtr::util {

// Annotated exclusive mutex. Same cost as std::mutex; the annotated
// lock/unlock entry points are what let -Wthread-safety track it.
class REVTR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() REVTR_ACQUIRE() { mu_.lock(); }
  void unlock() REVTR_RELEASE() { mu_.unlock(); }
  bool try_lock() REVTR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The underlying handle, for interop that the analysis cannot model
  // (std::scoped_lock's deadlock-avoiding two-mutex acquisition).
  std::mutex& native() REVTR_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

// Annotated reader/writer mutex.
class REVTR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() REVTR_ACQUIRE() { mu_.lock(); }
  void unlock() REVTR_RELEASE() { mu_.unlock(); }
  void lock_shared() REVTR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() REVTR_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII guard over util::Mutex, replacing std::lock_guard/std::unique_lock in
// src/. Exposes lock()/unlock() so std::condition_variable_any can park on
// it (ThreadPool); the annotations keep the analysis aware that a wait
// releases and reacquires the capability.
class REVTR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) REVTR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() REVTR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // condition_variable_any interface: wait() calls unlock(), parks, then
  // lock() again before returning — the guard is held on both sides.
  void lock() REVTR_ACQUIRE() { mu_.lock(); }
  void unlock() REVTR_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

// Exclusive RAII guard over util::SharedMutex (writer side).
class REVTR_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) REVTR_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ExclusiveLock() REVTR_RELEASE() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Shared RAII guard over util::SharedMutex (reader side). The destructor
// releases generically: the analysis otherwise flags the shared release of
// a capability the constructor acquired as shared-vs-exclusive mismatch on
// some clang versions.
class REVTR_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) REVTR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() REVTR_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Two-mutex guard for operations spanning two objects of the same class
// (Distribution's copy/move assignment locks both sides). Delegates the
// deadlock-free acquisition order to std::scoped_lock over the native
// handles; the annotations declare the outcome the analysis cannot derive.
class REVTR_SCOPED_CAPABILITY ScopedLock2 {
 public:
  ScopedLock2(Mutex& a, Mutex& b) REVTR_ACQUIRE(a, b)
      : lock_(a.native(), b.native()) {}
  ~ScopedLock2() REVTR_RELEASE() = default;

  ScopedLock2(const ScopedLock2&) = delete;
  ScopedLock2& operator=(const ScopedLock2&) = delete;

 private:
  std::scoped_lock<std::mutex, std::mutex> lock_;
};

}  // namespace revtr::util
