// Small statistics toolkit used by the evaluation harnesses.
//
// The paper reports CDFs/CCDFs (Figs 5, 6, 8, 9, 11-14), means, medians and
// simple fractions. Distribution keeps raw samples so arbitrary quantiles and
// curve points can be extracted; Counter2x2-style tallies back the tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/annotate.h"

namespace revtr::util {

// Accumulates scalar samples; quantiles sort lazily.
//
// Thread safety: every accessor (including the lazily sorting ones) and
// add() take an internal mutex, so concurrent const reads — the pattern the
// parallel campaign driver's merged stats see — are race-free. The earlier
// implementation sorted through a const_cast from const accessors, which was
// a data race (and UB) the moment two threads asked for a quantile.
class Distribution {
 public:
  Distribution() = default;
  Distribution(const Distribution& other);
  Distribution& operator=(const Distribution& other);
  Distribution(Distribution&& other) noexcept;
  Distribution& operator=(Distribution&& other) noexcept;

  void add(double sample);
  void add_all(std::span<const double> samples);

  std::size_t count() const;
  bool empty() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  // Quantile in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  // Fraction of samples <= x (empirical CDF) and > x... (CCDF uses >=
  // semantics matching the paper's "fraction of pairs with value >= x").
  double cdf_at(double x) const;
  double ccdf_at(double x) const;

  // Evaluate the CDF/CCDF at each x in xs; handy for printing curves.
  std::vector<double> cdf_curve(std::span<const double> xs) const;
  std::vector<double> ccdf_curve(std::span<const double> xs) const;

  // Sorted snapshot of the samples. Returned by value: a reference into the
  // guarded vector would dangle the moment a concurrent add() reallocates
  // it — the same late-guarded-member class of race the annotations exist
  // to rule out (callers are merge-at-barrier paths; the copy is cheap).
  std::vector<double> samples() const;

 private:
  void ensure_sorted_locked() const REVTR_REQUIRES(mu_);
  double mean_locked() const REVTR_REQUIRES(mu_);

  mutable Mutex mu_;
  mutable std::vector<double> samples_ REVTR_GUARDED_BY(mu_);
  double sum_ REVTR_GUARDED_BY(mu_) = 0;
  mutable bool sorted_ REVTR_GUARDED_BY(mu_) = true;
};

// Ratio counter: fraction of successes over trials, as used all over the
// evaluation ("x of y paths", Table 2 rows, coverage percentages).
struct Fraction {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;

  void tally(bool hit) noexcept {
    ++total;
    hits += hit ? 1 : 0;
  }
  double value() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Keyed tally for grouping results by category (packet type, AS, hop class).
class KeyedCounter {
 public:
  void add(const std::string& key, std::uint64_t n = 1) { counts_[key] += n; }
  std::uint64_t get(const std::string& key) const;
  std::uint64_t total() const;
  const std::map<std::string, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

// Evenly spaced grid of x values, for sampling curves.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace revtr::util
