// Alias resolution: grouping IP addresses into routers (Appx B.1).
//
// The paper's accuracy evaluation hinges on alias information being
// *incomplete*: 75% of mismatched hops "do not allow for alias resolution".
// We therefore model the real datasets, not just the ground truth:
//  * AliasStore        - a union-find of addresses known to share a router.
//  * ground truth      - complete, from the generator (for upper bounds).
//  * MIDAR-like        - covers only a sampled subset of routers/interfaces,
//                        like CAIDA ITDK.
//  * SNMPv3-like       - routers flagged snmp_responder reveal a stable
//                        identifier on every interface ([17] in the paper);
//                        used as reliable "not on path" evidence in §4.4.
//  * /30 heuristic     - two addresses in one /30 (or /31) are opposite ends
//                        of a point-to-point link; used to match RR hops
//                        (egress) with traceroute hops (ingress).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace revtr::alias {

// Union-find over addresses; queries never mutate observable state.
class AliasStore {
 public:
  void add_pair(net::Ipv4Addr a, net::Ipv4Addr b);
  void add_set(const std::vector<net::Ipv4Addr>& addrs);

  // True when both addresses are known and in the same alias set. Unknown
  // addresses are never aliases of anything ("does not allow resolution").
  bool same_router(net::Ipv4Addr a, net::Ipv4Addr b) const;
  bool knows(net::Ipv4Addr addr) const;

  // Canonical representative of the address's alias set, if known.
  std::optional<net::Ipv4Addr> representative(net::Ipv4Addr addr) const;

  std::size_t known_addresses() const noexcept { return parent_.size(); }

 private:
  net::Ipv4Addr find(net::Ipv4Addr addr) const;

  mutable std::unordered_map<net::Ipv4Addr, net::Ipv4Addr> parent_;
};

// Complete alias knowledge from the generator: every interface of every
// router, including gateways and private aliases.
AliasStore ground_truth_aliases(const topology::Topology& topo);

// MIDAR-like partial dataset: each router is covered with probability
// `router_coverage`; covered routers contribute each interface with
// probability `interface_coverage`. Mirrors ITDK's incompleteness (the
// paper re-ran MIDAR because 30% of RR addresses were absent from ITDK).
AliasStore midar_like_aliases(const topology::Topology& topo, util::Rng& rng,
                              double router_coverage = 0.55,
                              double interface_coverage = 0.75);

// SNMPv3-style resolver: a responder reveals the same engine identifier on
// all its interfaces. Returns nullopt for non-responders/unknown addresses.
class SnmpResolver {
 public:
  explicit SnmpResolver(const topology::Topology& topo);

  std::optional<std::uint64_t> identifier(net::Ipv4Addr addr) const;
  bool responsive(net::Ipv4Addr addr) const {
    return identifier(addr).has_value();
  }

  // All known SNMP-responsive interface addresses (the §4.4 dataset basis).
  std::vector<net::Ipv4Addr> responsive_addresses() const;

 private:
  const topology::Topology& topo_;
};

// Point-to-point heuristic: same /30 (or /31) => opposite ends of a link.
bool same_p2p_subnet(net::Ipv4Addr a, net::Ipv4Addr b);

// The other address of a /30 pair (used to build the §4.4 target list:
// probing x.x.x.2 likely traverses the router owning x.x.x.1).
net::Ipv4Addr p2p_partner(net::Ipv4Addr addr);

}  // namespace revtr::alias
