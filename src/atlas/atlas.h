// Traceroute atlas (design questions Q1 and Q2).
//
// Q1: for each Reverse Traceroute source S the system maintains an atlas of
// traceroutes from distributed probe hosts (RIPE-Atlas-like) toward S,
// refreshed daily, with traceroutes that proved useless replaced by fresh
// random ones (Insights 1.4/1.5).
//
// Q2: to detect intersections without runtime alias resolution, the system
// sends background RR pings to every atlas traceroute hop; the reply's RR
// slots reveal the addresses that same router path exposes to RR probes
// toward S. A later reverse traceroute that uncovers one of those addresses
// intersects the atlas at a known hop (Insight 1.6, §4.2, Fig 3).
//
// The module also implements the greedy weighted-max-coverage "optimal"
// atlas selection used as the upper bound in the Appx D.2.1 study (Fig 9).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "alias/alias.h"
#include "net/ipv4.h"
#include "obs/metrics.h"
#include "probing/prober.h"
#include "topology/topology.h"
#include "util/annotate.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace revtr::atlas {

struct AtlasTraceroute {
  topology::HostId probe = topology::kInvalidId;
  // Responsive hops in probe->source order; the source address is last when
  // the traceroute reached it.
  std::vector<net::Ipv4Addr> hops;
  util::SimClock::Micros measured_at = 0;
  bool reached_source = false;
  bool useful = false;  // Intersected by some reverse traceroute.
};

struct Intersection {
  std::size_t traceroute_index = 0;
  std::size_t hop_index = 0;
};

// Thread safety: every entry point may be called concurrently. Per-source
// state is guarded by lock stripes (shared for reads, exclusive for
// touch()'s useful-flag write and for the offline mutations
// build/refresh/build_rr_alias_index); the source map itself has its own
// shared mutex. Lock order: sources_mu_ before a stripe; never two stripes
// at once. traceroutes()/rr_index_entries() return snapshots by value under
// the stripe's shared lock, so holding one across a concurrent refresh()
// is safe — it just may be stale (pinned by tests/concurrency_test.cpp).
// Registry handles for atlas maintenance and lookup accounting.
struct AtlasMetrics {
  explicit AtlasMetrics(obs::MetricsRegistry& registry);

  obs::Counter* builds;
  obs::Counter* refreshes;
  obs::Counter* rr_index_builds;
  // revtr_atlas_intersections_total{kind=...}
  obs::Counter* intersect_hop;
  obs::Counter* intersect_rr_index;
  obs::Counter* intersect_alias;
  obs::Counter* intersect_miss;
  // Entries across all sources' Q2 indexes, updated after each (re)index.
  obs::Gauge* rr_index_entries;
};

class TracerouteAtlas {
 public:
  TracerouteAtlas(probing::Prober& prober, const topology::Topology& topo);

  // nullptr (default) = no instrumentation; handles must outlive their use.
  void set_metrics(const AtlasMetrics* metrics) noexcept {
    metrics_.store(metrics, std::memory_order_release);
  }

  // Q1: (re)build the atlas for `source` with traceroutes from `count`
  // random probe hosts. Returns the simulated duration of the build.
  util::SimClock::Micros build(topology::HostId source, std::size_t count,
                               util::Rng& rng,
                               util::SimClock::Micros now = 0);

  // Daily refresh: keep traceroutes marked useful, re-measure them, and
  // replace the rest with fresh random probe hosts (Appx D.2.1 policy).
  util::SimClock::Micros refresh(topology::HostId source, util::Rng& rng,
                                 util::SimClock::Micros now);

  // Q2: issue RR pings from the source to every atlas hop and index the
  // addresses revealed on the reverse slots.
  void build_rr_alias_index(topology::HostId source);

  // Exact-address intersection; with use_rr_index also matches addresses
  // learned by the Q2 background probes.
  std::optional<Intersection> intersect(topology::HostId source,
                                        net::Ipv4Addr addr,
                                        bool use_rr_index) const;

  // revtr 1.0-style intersection through an external alias dataset: the
  // address intersects if the dataset says it shares a router with a hop.
  std::optional<Intersection> intersect_with_aliases(
      topology::HostId source, net::Ipv4Addr addr,
      const alias::AliasStore& aliases) const;

  // Hops strictly after the intersection, ending at the source.
  std::vector<net::Ipv4Addr> suffix_after(topology::HostId source,
                                          const Intersection& at) const;

  // Marks the intersected traceroute as useful (refresh keeps it) and
  // returns its age relative to `now`.
  util::SimClock::Micros touch(topology::HostId source, const Intersection& at,
                               util::SimClock::Micros now);

  // Snapshot of the source's traceroutes, taken under the stripe's shared
  // lock. Returned by value: a reference into the atlas would dangle (or
  // worse, be read mid-rebuild) the moment a concurrent refresh() clears
  // and re-measures the vector. Empty for unknown sources.
  std::vector<AtlasTraceroute> traceroutes(topology::HostId source) const;
  // Cheap size query (no snapshot copy) for budget/report code.
  std::size_t traceroute_count(topology::HostId source) const;
  bool has_source(topology::HostId source) const {
    const util::SharedLock lock(sources_mu_);
    return sources_.contains(source);
  }
  std::size_t rr_index_size(topology::HostId source) const;
  // Q2 index contents, exposed so validation tooling and tests can assert
  // structural properties (every entry's suffix must reach the source).
  // Snapshot by value, same rationale as traceroutes().
  std::unordered_map<net::Ipv4Addr, Intersection> rr_index_entries(
      topology::HostId source) const;

 private:
  struct SourceAtlas {
    std::vector<AtlasTraceroute> traceroutes;
    // Exact traceroute hop address -> location. Open addressing: these two
    // are probed once per revealed hop on the engine's intersection path.
    util::FlatMap<net::Ipv4Addr, Intersection> hop_index;
    // Q2: RR-revealed address -> location.
    util::FlatMap<net::Ipv4Addr, Intersection> rr_index;
  };

  void index_hops(SourceAtlas& atlas);
  util::SimClock::Micros measure_into(SourceAtlas& atlas,
                                      topology::HostId source,
                                      std::span<const topology::HostId> probes,
                                      util::SimClock::Micros now);

  // Lookup under sources_mu_ (shared). Returns nullptr when absent; the
  // pointer stays valid across later insertions (node-based map).
  const SourceAtlas* find_atlas(topology::HostId source) const;

  // Stripe guarding one source's SourceAtlas contents. Lock order:
  // sources_mu_ before a stripe; never two stripes at once.
  util::SharedMutex& stripe_of(topology::HostId source) const {
    return stripes_[util::splitmix64(source) % kStripes];
  }

  probing::Prober& prober_;
  const topology::Topology& topo_;
  // Atomic, not guarded: set_metrics() races benignly with lookups (the
  // handle is a pointer to registry-owned counters, themselves atomic).
  std::atomic<const AtlasMetrics*> metrics_{nullptr};
  mutable util::SharedMutex sources_mu_;
  static constexpr std::size_t kStripes = 16;
  mutable std::array<util::SharedMutex, kStripes> stripes_;
  // The map (key set) is guarded by sources_mu_; each value's *contents*
  // are guarded dynamically by stripe_of(source), which the static analysis
  // cannot express — the lint lock-order pass checks the acquisition order.
  std::unordered_map<topology::HostId, SourceAtlas> sources_
      REVTR_GUARDED_BY(sources_mu_);
};

// Greedy weighted max-coverage selection over a pool of traceroutes: the
// weight of an address is the summed distance-to-source over traceroutes
// containing it (covering far-from-source addresses saves more probing).
// Returns indices of the selected traceroutes, best first.
std::vector<std::size_t> greedy_optimal_selection(
    std::span<const AtlasTraceroute> pool, std::size_t k);

// Variant with the address weights computed from a different traceroute
// set — the "Optimal revtr" oracle of Fig 9a, which knows the reverse
// traceroutes that will be measured.
std::vector<std::size_t> greedy_optimal_selection(
    std::span<const AtlasTraceroute> pool, std::size_t k,
    std::span<const AtlasTraceroute> weight_pool);

// Savings metric of Appx D.2.1: the fraction of `path`'s hops (ordered
// destination->source) that an atlas covering `covered` short-circuits:
// from the earliest covered hop onward, everything is known.
double intersected_fraction(std::span<const net::Ipv4Addr> path,
                            const std::unordered_set<net::Ipv4Addr>& covered);

}  // namespace revtr::atlas
