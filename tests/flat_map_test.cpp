// Tests for util::FlatMap / util::FlatSet (src/util/flat_map.h).
//
// The interesting behaviour is all in the open-addressing machinery:
// backward-shift erase must keep every surviving probe chain reachable, and
// the narrowed iterator contract (erase(it) resumes at the revalidated slot,
// with a documented revisit exception for clusters that wrap the end of the
// array) is pinned here with an identity hash so the slot layout is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"
#include "util/rng.h"

namespace revtr::util {
namespace {

// Identity hash: home slot == key & (capacity - 1). Lets tests construct
// exact probe clusters (including wrap-around) instead of hoping splitmix64
// collides.
struct IdentityHash {
  std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key);
  }
};

// Degenerate hash: every key lands in one of four home slots, so every table
// is a handful of long probe clusters. Worst case for backward-shift erase.
struct FourSlotHash {
  std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key & 3u);
  }
};

// --------------------------------------------------------------------------
// Basics
// --------------------------------------------------------------------------

TEST(FlatMap, EmptyMapBasics) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.count(7), 0u);
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, InsertVariantsAgreeOnSemantics) {
  FlatMap<std::uint64_t, int> map;

  auto [it1, fresh1] = map.try_emplace(1, 10);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, 10);
  // try_emplace on a present key leaves the value alone.
  auto [it2, fresh2] = map.try_emplace(1, 99);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, 10);

  // insert_or_assign overwrites.
  auto [it3, fresh3] = map.insert_or_assign(1, 20);
  EXPECT_FALSE(fresh3);
  EXPECT_EQ(it3->second, 20);

  // insert(pair) keeps the existing value, like std::map::insert.
  auto [it4, fresh4] = map.insert({1, 77});
  EXPECT_FALSE(fresh4);
  EXPECT_EQ(it4->second, 20);
  auto [it5, fresh5] = map.insert({2, 30});
  EXPECT_TRUE(fresh5);
  EXPECT_EQ(it5->second, 30);

  EXPECT_TRUE(map.emplace(3, 40).second);
  map[4] = 50;
  EXPECT_EQ(map[5], 0);  // operator[] default-constructs.

  EXPECT_EQ(map.size(), 5u);
  EXPECT_EQ(map.at(3), 40);
  map.at(3) = 41;
  EXPECT_EQ(map.at(3), 41);
  const auto& cmap = map;
  EXPECT_EQ(cmap.at(4), 50);
  EXPECT_EQ(cmap.find(4)->second, 50);
  EXPECT_EQ(cmap.count(4), 1u);
}

TEST(FlatMap, ClearAndReuse) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map[k] = static_cast<int>(k);
  EXPECT_EQ(map.size(), 100u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(50));
  map[50] = 5;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(50), 5);
}

TEST(FlatMap, ReservePreservesContents) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 20; ++k) map[k] = static_cast<int>(k * 3);
  map.reserve(10000);
  EXPECT_EQ(map.size(), 20u);
  for (std::uint64_t k = 0; k < 20; ++k) {
    EXPECT_EQ(map.at(k), static_cast<int>(k * 3));
  }
}

TEST(FlatMap, SequentialKeysSurviveRepeatedRehash) {
  // Sequential keys are the default hasher's hardest realistic input (IPv4
  // addresses, dense ids); growth from 16 slots to thousands rehashes the
  // whole table many times along the way.
  FlatMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kCount = 10000;
  for (std::uint64_t k = 0; k < kCount; ++k) map[k] = k * k;
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    ASSERT_TRUE(map.contains(k)) << k;
    EXPECT_EQ(map.at(k), k * k);
  }
  EXPECT_FALSE(map.contains(kCount));
  std::uint64_t visited = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(value, key * key);
    ++visited;
  }
  EXPECT_EQ(visited, kCount);
}

// --------------------------------------------------------------------------
// Backward-shift erase
// --------------------------------------------------------------------------

TEST(FlatMap, EraseKeepsEveryClusterMemberReachable) {
  // All keys collide into four home slots, so erasing from the middle of a
  // cluster must backward-shift the tail or later members become orphaned
  // (their probe walk would stop at the hole).
  FlatMap<std::uint64_t, int, FourSlotHash> map;
  constexpr std::uint64_t kCount = 64;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    map.try_emplace(k, static_cast<int>(k));
  }
  std::vector<std::uint64_t> order;
  for (std::uint64_t k = 0; k < kCount; ++k) order.push_back(k);
  Rng rng(0xe7a5e);
  rng.shuffle(order);
  std::vector<bool> erased(kCount, false);
  for (const std::uint64_t victim : order) {
    EXPECT_EQ(map.erase(victim), 1u);
    erased[victim] = true;
    // Every survivor must still resolve through the shifted clusters.
    for (std::uint64_t k = 0; k < kCount; ++k) {
      if (erased[k]) {
        ASSERT_FALSE(map.contains(k)) << "resurrected key " << k;
      } else {
        ASSERT_TRUE(map.contains(k)) << "orphaned key " << k;
        ASSERT_EQ(map.at(k), static_cast<int>(k));
      }
    }
  }
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, ChurnDoesNotDegradeOrCorrupt) {
  // Scheduler-style steady-state churn: a sliding window of live keys,
  // erase-oldest + insert-newest for many times the table capacity. With
  // tombstones this pattern poisons probe chains; backward shift must keep
  // the table exact indefinitely.
  FlatMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kWindow = 128;
  constexpr std::uint64_t kSteps = 20000;
  for (std::uint64_t k = 0; k < kWindow; ++k) map[k] = k ^ 0xabcdef;
  for (std::uint64_t step = 0; step < kSteps; ++step) {
    ASSERT_EQ(map.erase(step), 1u);
    const std::uint64_t fresh = step + kWindow;
    map[fresh] = fresh ^ 0xabcdef;
    ASSERT_EQ(map.size(), kWindow);
    // Spot-check both window edges every step; full sweep periodically.
    ASSERT_FALSE(map.contains(step));
    ASSERT_TRUE(map.contains(step + 1));
    ASSERT_TRUE(map.contains(fresh));
    if (step % 1000 == 999) {
      for (std::uint64_t k = step + 1; k <= fresh; ++k) {
        ASSERT_EQ(map.at(k), k ^ 0xabcdef);
      }
    }
  }
}

// --------------------------------------------------------------------------
// Randomized oracle: FlatMap vs std::unordered_map
// --------------------------------------------------------------------------

TEST(FlatMap, RandomizedOpsMatchUnorderedMapOracle) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(0xf1a7);  // Deterministic: failures reproduce bit-for-bit.
  constexpr std::uint64_t kKeySpace = 512;  // Small => frequent hits/erases.
  constexpr int kOps = 30000;
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t key = rng.below(kKeySpace);
    switch (rng.below(5)) {
      case 0: {  // try_emplace
        const auto a = map.try_emplace(key, static_cast<std::uint64_t>(op));
        const auto b =
            oracle.try_emplace(key, static_cast<std::uint64_t>(op));
        ASSERT_EQ(a.second, b.second);
        ASSERT_EQ(a.first->second, b.first->second);
        break;
      }
      case 1: {  // insert_or_assign
        const auto a =
            map.insert_or_assign(key, static_cast<std::uint64_t>(op));
        const auto b =
            oracle.insert_or_assign(key, static_cast<std::uint64_t>(op));
        ASSERT_EQ(a.second, b.second);
        break;
      }
      case 2: {  // erase by key
        ASSERT_EQ(map.erase(key), oracle.erase(key));
        break;
      }
      case 3: {  // operator[] read-modify-write
        map[key] += 1;
        oracle[key] += 1;
        break;
      }
      default: {  // pure lookup
        const auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_FALSE(map.contains(key));
        } else {
          ASSERT_TRUE(map.contains(key));
          ASSERT_EQ(map.at(key), it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
    if (op % 2500 == 2499) {
      // Full bidirectional sweep: same contents, no extras either way.
      for (const auto& [k, v] : oracle) {
        const auto it = map.find(k);
        ASSERT_NE(it, map.end()) << "missing key " << k;
        ASSERT_EQ(it->second, v);
      }
      std::size_t walked = 0;
      for (const auto& [k, v] : map) {
        const auto it = oracle.find(k);
        ASSERT_NE(it, oracle.end()) << "phantom key " << k;
        ASSERT_EQ(v, it->second);
        ++walked;
      }
      ASSERT_EQ(walked, oracle.size());
    }
  }
}

// --------------------------------------------------------------------------
// Iterator contract
// --------------------------------------------------------------------------

TEST(FlatMap, EraseIteratorReturnsBackwardShiftedSuccessor) {
  // Identity hash, capacity 16 (reserve(8) rounds up to 16 slots): keys 2
  // and 18 share home slot 2, key 3 homes at 3. Layout after inserts:
  //   slot2=2, slot3=18 (probed past 2), slot4=3 (probed past 18).
  // Erasing key 2 backward-shifts 18 into slot 2 and 3 into slot 3, so the
  // iterator returned for the erased slot must see key 18 — resuming there
  // skips nothing.
  FlatMap<std::uint64_t, int, IdentityHash> map;
  map.reserve(8);
  map.try_emplace(2, 200);
  map.try_emplace(18, 1800);
  map.try_emplace(3, 300);

  auto it = map.find(2);
  ASSERT_NE(it, map.end());
  it = map.erase(it);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 18u);
  EXPECT_EQ(it->second, 1800);
  ++it;
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 3u);
  ++it;
  EXPECT_EQ(it, map.end());
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, EraseIteratorWrapAroundClusterRevisits) {
  // The documented exception: a cluster wrapping the array end. Keys 15 and
  // 31 both home at slot 15 of a 16-slot table; 31 wraps to slot 0.
  // Iteration meets 31 first (slot 0), then 15 (slot 15). Erasing 15 shifts
  // 31 from slot 0 back to slot 15 — the revalidated iterator therefore
  // yields 31 a SECOND time. Pin it so a future rewrite that silently
  // changes the contract (either fixing or worsening it) is caught.
  FlatMap<std::uint64_t, int, IdentityHash> map;
  map.reserve(8);
  map.try_emplace(15, 150);
  map.try_emplace(31, 310);

  auto it = map.begin();
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 31u);  // slot 0, wrapped out of its home cluster
  ++it;
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 15u);  // slot 15
  it = map.erase(it);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 31u);  // revisit: 31 moved into the erased slot
  ++it;
  EXPECT_EQ(it, map.end());
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(31));
}

TEST(FlatMap, EraseWhileIteratingVisitsEverySurvivor) {
  // The erase-while-iterating pattern the contract promises: drop every even
  // key in one pass. Revisits are allowed (wrap-around), skips are not —
  // every odd key must be seen at least once and every even key erased.
  FlatMap<std::uint64_t, int> map;
  constexpr std::uint64_t kCount = 1000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    map.try_emplace(k, static_cast<int>(k));
  }
  std::vector<int> seen(kCount, 0);
  for (auto it = map.begin(); it != map.end();) {
    ++seen[it->first];
    if (it->first % 2 == 0) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(map.size(), kCount / 2);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    EXPECT_GE(seen[k], 1) << "key never visited: " << k;
    EXPECT_EQ(map.contains(k), k % 2 == 1) << k;
  }
}

// --------------------------------------------------------------------------
// FlatSet
// --------------------------------------------------------------------------

TEST(FlatSet, InsertEraseContains) {
  FlatSet<std::uint64_t> set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));  // duplicate
  EXPECT_TRUE(set.insert(6));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.count(6), 1u);
  EXPECT_FALSE(set.contains(7));
  EXPECT_EQ(set.erase(5), 1u);
  EXPECT_EQ(set.erase(5), 0u);
  EXPECT_FALSE(set.contains(5));
  EXPECT_EQ(set.size(), 1u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet, IterationYieldsEachKeyOnce) {
  FlatSet<std::uint64_t> set;
  set.reserve(300);
  for (std::uint64_t k = 0; k < 300; ++k) EXPECT_TRUE(set.insert(k * 7));
  std::vector<std::uint64_t> keys;
  for (const std::uint64_t key : set) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(keys.size(), 300u);
  for (std::uint64_t k = 0; k < 300; ++k) EXPECT_EQ(keys[k], k * 7);
}

}  // namespace
}  // namespace revtr::util
