// Measurement primitives built on the simulator.
//
// These are the operations the real system issues from its vantage points:
// plain pings, RR pings (optionally spoofed), timestamp-prespec queries
// (optionally spoofed), and Paris traceroute. Every call is accounted by
// type so Table 4's packet budget can be regenerated, and every result
// carries a simulated duration that the engine charges to the SimClock.
//
// The prober never advances the clock itself: batches of probes are
// conceptually concurrent, so the caller decides whether durations add up
// (sequential steps) or max out (parallel batches).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "topology/topology.h"
#include "util/sim_clock.h"

namespace revtr::probing {

// Table 4 packet categories.
enum class ProbeType : std::uint8_t {
  kPing,
  kRecordRoute,
  kSpoofedRecordRoute,
  kTimestamp,
  kSpoofedTimestamp,
  kTraceroute,  // Counted per packet (one per TTL tried).
};

std::string to_string(ProbeType type);

struct ProbeCounters {
  std::uint64_t ping = 0;
  std::uint64_t rr = 0;
  std::uint64_t spoofed_rr = 0;
  std::uint64_t ts = 0;
  std::uint64_t spoofed_ts = 0;
  std::uint64_t traceroute_packets = 0;
  std::uint64_t traceroutes = 0;

  std::uint64_t total() const noexcept {
    return ping + rr + spoofed_rr + ts + spoofed_ts + traceroute_packets;
  }
  ProbeCounters& operator+=(const ProbeCounters& other);
  ProbeCounters operator-(const ProbeCounters& other) const;
};

// One probe as emitted by the Prober, with its observed outcome. This is the
// ground-truth record the analysis layer (tools/revtr_mc) checks reverse
// traceroutes against: every ReverseHop must be justified by some event, and
// every packet charged to a request budget must appear here exactly once.
struct ProbeEvent {
  ProbeType type = ProbeType::kPing;
  topology::HostId from = topology::kInvalidId;
  net::Ipv4Addr target;
  std::optional<net::Ipv4Addr> spoof_as;
  bool responded = false;
  bool offline = false;    // Sent inside an OfflineScope (background survey).
  bool suppressed = false;  // Dropped by the fault policy before injection.
  std::uint64_t packets = 1;  // Traceroute: one event, many packets.
  std::vector<net::Ipv4Addr> slots;    // RR reply slots.
  std::vector<net::Ipv4Addr> prespec;  // TS prespecified addresses.
  std::vector<bool> stamped;           // TS stamps observed.
  std::vector<net::Ipv4Addr> tr_hops;  // Traceroute responsive hops in order.
  bool tr_reached = false;
};

// Passive tap on every probe the Prober emits. Observers must not issue
// probes from the callback (no re-entrancy).
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;
  virtual void on_probe(const ProbeEvent& event) = 0;
};

// Fault injection for the model checker: consulted before a probe is
// injected (type/from/target/spoof_as/offline are filled in, outcome fields
// are not). Returning true makes the probe vanish — it is still charged to
// the counters, exactly like a probe lost in the network. Traceroutes are
// not subject to fault policies (the schedules model RR/TS filtering and
// spoof loss, which do not affect plain TTL-limited probes).
using FaultPolicy = std::function<bool(const ProbeEvent&)>;

// Registry handles for probe accounting, resolved once so the per-probe
// cost is a single sharded relaxed add. `scope` partitions: a probe sent
// under an OfflineScope counts under scope="offline" only (unlike
// ProbeCounters, where offline is a subset of the grand total).
struct ProbeMetrics {
  explicit ProbeMetrics(obs::MetricsRegistry& registry);

  // Indexed [ProbeType][offline ? 1 : 0].
  std::array<std::array<obs::Counter*, 2>, 6> probes{};
  // Traceroute invocations (heads), as opposed to per-TTL packets above.
  std::array<obs::Counter*, 2> traceroutes{};
};

struct PingResult {
  bool responded = false;
  util::SimClock::Micros duration_us = 0;
};

struct RrProbeResult {
  bool responded = false;
  // The nine-slot record as observed in the reply (possibly empty).
  std::vector<net::Ipv4Addr> slots;
  util::SimClock::Micros duration_us = 0;
};

// One probe of an rr_ping_batch call.
struct RrBatchItem {
  topology::HostId from = topology::kInvalidId;
  net::Ipv4Addr target;
  std::optional<net::Ipv4Addr> spoof_as;
};

struct TsProbeResult {
  bool responded = false;
  // Whether each prespecified address recorded a timestamp.
  std::vector<bool> stamped;
  util::SimClock::Micros duration_us = 0;
};

struct TracerouteHop {
  std::optional<net::Ipv4Addr> addr;  // nullopt = "*" (no reply).
  util::SimClock::Micros rtt_us = 0;

  bool operator==(const TracerouteHop&) const = default;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached = false;  // Destination answered the final probe.
  util::SimClock::Micros duration_us = 0;

  bool operator==(const TracerouteResult&) const = default;

  // Responsive hop addresses in order (skipping "*").
  std::vector<net::Ipv4Addr> responsive_hops() const;
};

class Prober {
 public:
  // Unanswered probes are charged this much simulated time.
  static constexpr util::SimClock::Micros kProbeTimeoutUs =
      2 * util::SimClock::kSecond;
  static constexpr int kMaxTracerouteTtl = 40;

  explicit Prober(sim::Network& network);

  PingResult ping(topology::HostId from, net::Ipv4Addr target);

  // RR echo request from `from` to `target`. When `spoof_as` is set the
  // packet claims that source; the reply is then observed at the host
  // owning that address (nullopt result slots if the reply never arrives).
  RrProbeResult rr_ping(topology::HostId from, net::Ipv4Addr target,
                        std::optional<net::Ipv4Addr> spoof_as = std::nullopt);

  // A whole RR batch (the engine's 3-probe spoofed-RR batches) in one call,
  // stepped through the simulator in a single send_batch pass. Outcomes,
  // accounting, and observer notifications are byte-identical to calling
  // rr_ping() per item in order — packet ids, loss draws, and events all
  // happen in item order — but the batch reuses the prober's and the
  // simulator's scratch, so steady-state batches do not allocate. `out` is
  // resized to items.size().
  void rr_ping_batch(std::span<const RrBatchItem> items,
                     std::vector<RrProbeResult>& out);

  TsProbeResult ts_ping(topology::HostId from, net::Ipv4Addr target,
                        std::span<const net::Ipv4Addr> prespec,
                        std::optional<net::Ipv4Addr> spoof_as = std::nullopt);

  // Paris traceroute: constant flow identifiers across TTLs so per-flow
  // load balancers keep the probes on one path (Appx E).
  TracerouteResult traceroute(topology::HostId from, net::Ipv4Addr target);

  const ProbeCounters& counters() const noexcept { return counters_; }
  void reset_counters() {
    counters_ = ProbeCounters{};
    offline_counters_ = ProbeCounters{};
  }

  // Subset of counters() sent while an OfflineScope was active: background
  // measurement (ingress surveys, atlas builds/refreshes) that Table 4
  // accounts separately from per-request budgets.
  const ProbeCounters& offline_counters() const noexcept {
    return offline_counters_;
  }

  // Marks probes issued during its lifetime as offline/background. Nests.
  class OfflineScope {
   public:
    explicit OfflineScope(Prober& prober) : prober_(prober) {
      ++prober_.offline_depth_;
    }
    ~OfflineScope() { --prober_.offline_depth_; }
    OfflineScope(const OfflineScope&) = delete;
    OfflineScope& operator=(const OfflineScope&) = delete;

   private:
    Prober& prober_;
  };

  // Observer outlives the prober's use of it; pass nullptr to detach.
  void set_observer(ProbeObserver* observer) noexcept { observer_ = observer; }
  // Metrics handles outlive the prober's use of them; nullptr (the default)
  // makes instrumentation a no-op. Shared across probers: the counters are
  // internally sharded per worker thread.
  void set_metrics(const ProbeMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  void set_fault_policy(FaultPolicy policy) {
    fault_policy_ = std::move(policy);
  }

  sim::Network& network() noexcept { return network_; }
  const topology::Topology& topo() const noexcept { return network_.topo(); }

 private:
  std::uint16_t next_id() noexcept { return ++sequence_; }
  bool offline() const noexcept { return offline_depth_ > 0; }
  void charge(ProbeType type);
  void charge_traceroute_head();
  // Consults the fault policy; on a drop marks the event suppressed.
  bool vetoed(ProbeEvent& event);
  void notify(const ProbeEvent& event) {
    if (observer_ != nullptr) observer_->on_probe(event);
  }

  sim::Network& network_;
  ProbeCounters counters_;
  ProbeCounters offline_counters_;
  std::uint16_t sequence_ = 0;
  int offline_depth_ = 0;
  ProbeObserver* observer_ = nullptr;
  const ProbeMetrics* metrics_ = nullptr;
  FaultPolicy fault_policy_;

  // rr_ping_batch scratch, reused across batches (a Prober serves one
  // worker; no synchronization needed).
  std::vector<sim::BatchProbe> batch_probes_;
  std::vector<sim::SendResult> batch_replies_;
  std::vector<std::size_t> batch_slots_;  // item index per sent probe
  std::vector<ProbeEvent> batch_events_;
};

}  // namespace revtr::probing
