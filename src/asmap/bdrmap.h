// bdrmap-lite: traceroute-graph-based router-to-AS inference (Appx B.2).
//
// The paper evaluated bdrmapit as an alternative to prefix-based IP-to-AS
// mapping for deciding whether a symmetry-assumption link is intradomain.
// bdrmapit is an offline algorithm over a traceroute corpus; this is the
// corresponding lightweight inference: the AS operating the router behind
// an observed interface is voted on by the origin ASes of the addresses
// that *follow* it across the corpus (traceroute reveals ingress
// interfaces, so an interface numbered from the previous AS's space still
// precedes hops in the operator's own space).
//
// The paper found bdrmapit shifted only 0.07% of symmetry assumptions from
// intradomain to interdomain and 1.5% the other way, and that running it
// would hold the atlas hostage for ~30 minutes — so revtr 2.0 does not use
// it. bench_appxB2_bdrmap reproduces that comparison.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "asmap/asmap.h"
#include "net/ipv4.h"
#include "topology/topology.h"

namespace revtr::asmap {

class BdrmapLite {
 public:
  explicit BdrmapLite(const IpToAs& ip2as);

  // Feeds one measured IP-level path (ordered toward the destination).
  void add_path(std::span<const net::Ipv4Addr> hops);

  // Inferred operator AS of the router behind `addr`: the majority vote of
  // successor-hop origin ASes, falling back to prefix-based mapping.
  std::optional<topology::Asn> router_as(net::Ipv4Addr addr) const;

  // Link classification under the inferred mapping.
  bool intradomain(net::Ipv4Addr a, net::Ipv4Addr b) const;

  std::size_t observed_addresses() const noexcept { return votes_.size(); }
  // How many observed addresses end up re-mapped vs. plain prefix mapping.
  std::size_t remapped_addresses() const;

 private:
  const IpToAs& ip2as_;
  // addr -> successor-AS vote counts.
  std::unordered_map<net::Ipv4Addr,
                     std::unordered_map<topology::Asn, std::size_t>>
      votes_;
};

}  // namespace revtr::asmap
