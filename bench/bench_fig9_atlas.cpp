// Fig 9 (Appx D.2): traceroute atlas design study.
//  (a) mean fraction of reverse-traceroute hops short-circuited by the
//      atlas vs atlas size, random vs greedy-optimal selection;
//  (b) convergence of the daily replacement policy toward the optimal
//      atlas over refresh iterations;
//  (c) stability of the savings as the number of reverse traceroutes grows;
//  (d) fraction of reverse traceroutes that intersect a stale traceroute
//      over 24 hours of route churn.
//
// Paper: 20% of the traceroutes give ~93% of the optimal savings; random
// selection converges to optimal in ~5 iterations; savings are stable in
// the number of reverse traceroutes; only ~0.7% of reverse traceroutes
// intersect a stale traceroute within a day.
#include <cstdio>
#include <unordered_set>

#include "atlas/atlas.h"
#include "bench_common.h"
#include "eval/harness.h"

using namespace revtr;

namespace {

using atlas::AtlasTraceroute;

std::unordered_set<net::Ipv4Addr> covered_set(
    const std::vector<AtlasTraceroute>& pool,
    const std::vector<std::size_t>& selected) {
  std::unordered_set<net::Ipv4Addr> covered;
  for (const auto index : selected) {
    for (const auto hop : pool[index].hops) covered.insert(hop);
  }
  return covered;
}

double mean_savings(const std::vector<AtlasTraceroute>& revtrs,
                    const std::unordered_set<net::Ipv4Addr>& covered) {
  if (revtrs.empty()) return 0;
  double sum = 0;
  for (const auto& tr : revtrs) {
    // Walk from the far end (destination side) as a reverse traceroute
    // would: hops are ordered probe->source already.
    sum += atlas::intersected_fraction(tr.hops, covered);
  }
  return sum / static_cast<double>(revtrs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  const double churn_per_hour = flags.get_double("churn", 0.01);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 9: atlas size, convergence, and staleness",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  util::Rng rng(setup.seed * 17 + 29);

  // --- Collect the traceroute pools: every probe host -> each source,
  // split half/half into atlas pool and simulated reverse traceroutes. ---
  struct SourcePool {
    topology::HostId source;
    std::vector<AtlasTraceroute> atlas_pool;
    std::vector<AtlasTraceroute> revtr_pool;
  };
  std::vector<SourcePool> pools;
  for (std::size_t s = 0; s < sources; ++s) {
    SourcePool pool;
    pool.source = vps[s];
    const auto source_addr = lab.topo.host(pool.source).addr;
    std::vector<topology::HostId> probes(lab.topo.probe_hosts().begin(),
                                         lab.topo.probe_hosts().end());
    rng.shuffle(probes);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const auto trace = lab.prober.traceroute(probes[i], source_addr);
      if (!trace.reached) continue;
      AtlasTraceroute tr;
      tr.probe = probes[i];
      tr.hops = trace.responsive_hops();
      ((i % 2 == 0) ? pool.atlas_pool : pool.revtr_pool)
          .push_back(std::move(tr));
    }
    pools.push_back(std::move(pool));
  }

  // --- (a) savings vs atlas size, random vs optimal. ---
  std::printf("== Fig 9a: savings vs atlas size ==\n");
  util::Series random_series{"random", {}, {}};
  util::Series optimal_series{"optimal", {}, {}};
  util::Series optimal_revtr_series{"optimal-revtr", {}, {}};
  for (const double frac : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double random_sum = 0, optimal_sum = 0, optimal_revtr_sum = 0;
    for (const auto& pool : pools) {
      const auto k = static_cast<std::size_t>(
          frac * static_cast<double>(pool.atlas_pool.size()));
      // Random selection.
      std::vector<std::size_t> indices(pool.atlas_pool.size());
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
      rng.shuffle(indices);
      indices.resize(k);
      random_sum +=
          mean_savings(pool.revtr_pool, covered_set(pool.atlas_pool, indices));
      // Greedy optimal, weighted by the atlas pool itself.
      optimal_sum += mean_savings(
          pool.revtr_pool,
          covered_set(pool.atlas_pool,
                      atlas::greedy_optimal_selection(pool.atlas_pool, k)));
      // Oracle: selection from the atlas pool, weighted by the reverse
      // traceroutes that will be measured (upper bound).
      optimal_revtr_sum += mean_savings(
          pool.revtr_pool,
          covered_set(pool.atlas_pool,
                      atlas::greedy_optimal_selection(
                          pool.atlas_pool, k, pool.revtr_pool)));
    }
    const double n = static_cast<double>(pools.size());
    random_series.xs.push_back(frac);
    random_series.ys.push_back(random_sum / n);
    optimal_series.xs.push_back(frac);
    optimal_series.ys.push_back(optimal_sum / n);
    optimal_revtr_series.xs.push_back(frac);
    optimal_revtr_series.ys.push_back(optimal_revtr_sum / n);
  }
  std::printf("%s\n",
              util::render_figure(
                  "Fig 9a: mean fraction of hops intersected (x = atlas "
                  "fraction of pool)",
                  {optimal_series, optimal_revtr_series, random_series}, 3)
                  .c_str());

  // --- (b) refresh-policy convergence. ---
  std::printf("== Fig 9b: convergence of the replacement policy ==\n");
  util::Series convergence{"random++ (daily replacement)", {}, {}};
  double optimal_baseline = 0;
  {
    double sum = 0;
    for (const auto& pool : pools) {
      const auto k = pool.atlas_pool.size() / 5;
      sum += mean_savings(
          pool.revtr_pool,
          covered_set(pool.atlas_pool,
                      atlas::greedy_optimal_selection(pool.atlas_pool, k)));
    }
    optimal_baseline = sum / static_cast<double>(pools.size());
  }
  {
    // Per source: keep a working set of k indices; per iteration, evaluate
    // against a random batch of reverse traceroutes, keep the useful
    // traceroutes, replace the rest at random.
    std::vector<std::vector<std::size_t>> working(pools.size());
    for (std::size_t p = 0; p < pools.size(); ++p) {
      const auto k = pools[p].atlas_pool.size() / 5;
      std::vector<std::size_t> indices(pools[p].atlas_pool.size());
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
      rng.shuffle(indices);
      indices.resize(k);
      working[p] = indices;
    }
    for (int iteration = 0; iteration <= 12; ++iteration) {
      double sum = 0;
      for (std::size_t p = 0; p < pools.size(); ++p) {
        const auto& pool = pools[p];
        const auto covered = covered_set(pool.atlas_pool, working[p]);
        sum += mean_savings(pool.revtr_pool, covered);

        // Which atlas traceroutes were actually used by a random batch?
        std::unordered_set<std::size_t> useful;
        for (std::size_t r = 0; r < pool.revtr_pool.size(); ++r) {
          const auto& revtr = pool.revtr_pool[rng.below(
              pool.revtr_pool.size())];
          // First covered hop; attribute to the first traceroute with it.
          for (const auto hop : revtr.hops) {
            if (!covered.contains(hop)) continue;
            for (const auto index : working[p]) {
              const auto& hops = pool.atlas_pool[index].hops;
              if (std::find(hops.begin(), hops.end(), hop) != hops.end()) {
                useful.insert(index);
                break;
              }
            }
            break;
          }
        }
        // Keep the useful, replace the rest.
        const std::size_t k = working[p].size();
        std::vector<std::size_t> next(useful.begin(), useful.end());
        std::vector<std::size_t> fresh;
        for (std::size_t i = 0; i < pool.atlas_pool.size(); ++i) {
          if (!useful.contains(i)) fresh.push_back(i);
        }
        rng.shuffle(fresh);
        for (std::size_t i = 0; next.size() < k && i < fresh.size(); ++i) {
          next.push_back(fresh[i]);
        }
        working[p] = std::move(next);
      }
      convergence.xs.push_back(iteration);
      convergence.ys.push_back(sum / static_cast<double>(pools.size()));
    }
  }
  util::Series optimal_line{"optimal", convergence.xs, {}};
  optimal_line.ys.assign(convergence.xs.size(), optimal_baseline);
  std::printf("%s\n", util::render_figure(
                          "Fig 9b: mean savings per refresh iteration",
                          {convergence, optimal_line}, 3)
                          .c_str());

  // --- (c) savings vs number of reverse traceroutes. ---
  std::printf("== Fig 9c: savings vs number of reverse traceroutes ==\n");
  std::vector<util::Series> by_size;
  for (const double frac : {0.2, 0.6, 1.0}) {
    util::Series series;
    series.name = "atlas fraction " + util::cell(frac, 1);
    for (const std::size_t count : {5u, 10u, 20u, 50u, 100u, 200u}) {
      double sum = 0;
      std::size_t total = 0;
      for (const auto& pool : pools) {
        const auto k = static_cast<std::size_t>(
            frac * static_cast<double>(pool.atlas_pool.size()));
        std::vector<std::size_t> indices(pool.atlas_pool.size());
        for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
        util::Rng local(setup.seed + 1);
        local.shuffle(indices);
        indices.resize(k);
        const auto covered = covered_set(pool.atlas_pool, indices);
        for (std::size_t r = 0; r < count && r < pool.revtr_pool.size();
             ++r) {
          sum += atlas::intersected_fraction(pool.revtr_pool[r].hops,
                                             covered);
          ++total;
        }
      }
      if (total == 0) continue;
      series.xs.push_back(static_cast<double>(count));
      series.ys.push_back(sum / static_cast<double>(total));
    }
    by_size.push_back(std::move(series));
  }
  std::printf("%s\n",
              util::render_figure("Fig 9c: mean savings vs #revtrs (x = "
                                  "reverse traceroutes intersected)",
                                  by_size, 3)
                  .c_str());

  // --- (d) staleness over a day of churn. ---
  std::printf("== Fig 9d: staleness under churn ==\n");
  util::Series stale_missing{"cumulative, intersection vanished", {}, {}};
  util::Series stale_aspath{"cumulative, AS path after changed", {}, {}};
  std::uint64_t intersections = 0, gone = 0, as_changed = 0;
  for (int hour = 1; hour <= 24; ++hour) {
    lab.bgp.set_epoch(static_cast<std::uint32_t>(hour), churn_per_hour * hour);
    for (const auto& pool : pools) {
      const auto source_addr = lab.topo.host(pool.source).addr;
      for (int burst = 0; burst < 5; ++burst) {
      // A fresh "reverse traceroute" measured under the churned routes.
      const auto& sim_revtr =
          pool.revtr_pool[rng.below(pool.revtr_pool.size())];
      const auto fresh_revtr =
          lab.prober.traceroute(sim_revtr.probe, source_addr);
      if (!fresh_revtr.reached) continue;
      const auto fresh_hops = fresh_revtr.responsive_hops();
      // Intersect against the (epoch-0) atlas pool.
      for (const auto hop : fresh_hops) {
        const AtlasTraceroute* hit = nullptr;
        std::size_t hit_index = 0;
        for (const auto& tr : pool.atlas_pool) {
          const auto it = std::find(tr.hops.begin(), tr.hops.end(), hop);
          if (it != tr.hops.end()) {
            hit = &tr;
            hit_index = static_cast<std::size_t>(it - tr.hops.begin());
            break;
          }
        }
        if (hit == nullptr) continue;
        ++intersections;
        // Re-measure the atlas traceroute under current routes.
        const auto fresh_atlas =
            lab.prober.traceroute(hit->probe, source_addr);
        const auto now_hops = fresh_atlas.responsive_hops();
        const auto now_it =
            std::find(now_hops.begin(), now_hops.end(), hop);
        if (now_it == now_hops.end()) {
          ++gone;
        } else {
          const std::vector<net::Ipv4Addr> old_suffix(
              hit->hops.begin() + static_cast<long>(hit_index),
              hit->hops.end());
          const std::vector<net::Ipv4Addr> new_suffix(now_it,
                                                      now_hops.end());
          if (lab.ip2as.as_path(old_suffix) !=
              lab.ip2as.as_path(new_suffix)) {
            ++as_changed;
          }
        }
        break;
      }
      }
    }
    const double denom =
        intersections == 0 ? 1.0 : static_cast<double>(intersections);
    stale_missing.xs.push_back(hour);
    stale_missing.ys.push_back(static_cast<double>(gone) / denom);
    stale_aspath.xs.push_back(hour);
    stale_aspath.ys.push_back(static_cast<double>(as_changed) / denom);
  }
  std::printf("%s\n",
              util::render_figure(
                  "Fig 9d: fraction of intersections stale (x = hour)",
                  {stale_missing, stale_aspath}, 4)
                  .c_str());
  std::printf("intersections tested: %llu, vanished: %llu, AS-path "
              "changed: %llu\n",
              static_cast<unsigned long long>(intersections),
              static_cast<unsigned long long>(gone),
              static_cast<unsigned long long>(as_changed));
  std::printf(
      "\npaper: 1000 random traceroutes per source give ~93%% of the optimal\n"
      "5000 (9a); the replacement policy converges in ~5 iterations (9b);\n"
      "savings stay flat as load grows (9c); <1%% of reverse traceroutes\n"
      "intersect a stale traceroute within a day (9d).\n");
  return 0;
}
