#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/table.h"

namespace revtr::obs {

Trace::Trace(std::size_t max_spans) : max_spans_(max_spans) {
  REVTR_CHECK(max_spans_ > 0);
  // Typical request: one root + a handful of stage spans + one span per
  // spoofed batch. Reserving here keeps the hot path free of reallocations
  // (Span is large — moving a grown vector moves strings).
  spans_.reserve(std::min<std::size_t>(max_spans_, 32));
  open_stack_.reserve(8);
}

Trace::SpanId Trace::start_span(std::string name, util::SimClock::Micros now) {
  if (spans_.size() >= max_spans_) {
    overflowed_ = true;
    return kDroppedSpan;
  }
  Span span;
  span.name = std::move(name);
  span.parent = open_stack_.empty() ? Span::kNoParent : open_stack_.back();
  span.begin = now;
  span.end = now;
  const SpanId id = spans_.size();
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void Trace::end_span(SpanId id, util::SimClock::Micros now,
                     std::uint64_t probes) {
  if (id == kDroppedSpan) return;
  REVTR_CHECK(!open_stack_.empty() && open_stack_.back() == id);
  open_stack_.pop_back();
  Span& span = spans_[id];
  span.end = now;
  span.probes = probes;
  span.open = false;
}

void Trace::annotate(SpanId id, std::string key, std::string value) {
  if (id == kDroppedSpan) return;
  REVTR_CHECK(id < spans_.size());
  spans_[id].annotations.emplace_back(std::move(key), std::move(value));
}

void Trace::event(std::string name, util::SimClock::Micros now) {
  const SpanId id = start_span(std::move(name), now);
  end_span(id, now, 0);
}

std::uint64_t Trace::attributed_probes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& span : spans_) total += span.probes;
  return total;
}

util::Json Trace::to_json() const {
  util::Json root = util::Json::object();
  root["request_index"] = util::Json(request_index);
  root["destination"] = util::Json(destination);
  root["source"] = util::Json(source);
  root["overflowed"] = util::Json(overflowed_);
  util::Json spans = util::Json::array();
  for (const auto& span : spans_) {
    util::Json js = util::Json::object();
    js["name"] = util::Json(span.name);
    if (span.parent != Span::kNoParent) {
      js["parent"] = util::Json(static_cast<std::uint64_t>(span.parent));
    }
    js["begin_us"] = util::Json(span.begin);
    js["end_us"] = util::Json(span.end);
    js["probes"] = util::Json(span.probes);
    if (!span.annotations.empty()) {
      util::Json notes = util::Json::object();
      for (const auto& [key, value] : span.annotations) {
        notes[key] = util::Json(value);
      }
      js["annotations"] = std::move(notes);
    }
    spans.push_back(std::move(js));
  }
  root["spans"] = std::move(spans);
  return root;
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  REVTR_CHECK(capacity_ > 0);
}

void TraceSink::publish(Trace trace) {
  const util::MutexLock lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(trace));
}

std::vector<Trace> TraceSink::published() const {
  std::vector<Trace> out;
  {
    const util::MutexLock lock(mu_);
    out.assign(ring_.begin(), ring_.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Trace& a, const Trace& b) {
                     return a.request_index < b.request_index;
                   });
  return out;
}

std::size_t TraceSink::size() const {
  const util::MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t TraceSink::dropped() const {
  const util::MutexLock lock(mu_);
  return dropped_;
}

util::Json TraceSink::to_json() const {
  const auto traces = published();
  util::Json root = util::Json::object();
  root["dropped"] = util::Json(dropped());
  util::Json list = util::Json::array();
  for (const auto& trace : traces) list.push_back(trace.to_json());
  root["traces"] = std::move(list);
  return root;
}

std::string TraceSink::to_table() const {
  struct Row {
    std::uint64_t count = 0;
    std::uint64_t probes = 0;
    util::SimClock::Micros micros = 0;
  };
  std::map<std::string, Row> by_name;
  for (const auto& trace : published()) {
    for (const auto& span : trace.spans()) {
      Row& row = by_name[span.name];
      ++row.count;
      row.probes += span.probes;
      row.micros += span.end - span.begin;
    }
  }
  util::TextTable table({"span", "count", "probes", "sim seconds"});
  for (const auto& [name, row] : by_name) {
    table.add_row({name, util::cell_count(row.count),
                   util::cell_count(row.probes),
                   util::cell(static_cast<double>(row.micros) /
                              util::SimClock::kSecond)});
  }
  return table.render();
}

}  // namespace revtr::obs
