#include <gtest/gtest.h>

#include <memory>

#include "analysis/invariants.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"

namespace revtr::sched {
namespace {

using topology::HostId;

topology::TopologyConfig tiny_config() {
  topology::TopologyConfig config;
  config.seed = 17;
  config.num_ases = 60;
  config.num_vps = 6;
  config.num_vps_2016 = 2;
  config.num_probe_hosts = 20;
  return config;
}

class SchedFixture : public ::testing::Test {
 protected:
  void SetUp() override { lab_ = std::make_unique<eval::Lab>(tiny_config()); }

  ProbeDemand ping_demand(std::size_t vp_index, std::size_t host_index) {
    ProbeDemand demand;
    demand.type = probing::ProbeType::kPing;
    demand.from = lab_->topo.vantage_points()[vp_index];
    demand.target =
        lab_->topo.host(lab_->topo.probe_hosts()[host_index]).addr;
    return demand;
  }

  ProbeDemand spoofed_demand(std::size_t host_index, net::Ipv4Addr ingress) {
    ProbeDemand demand;
    demand.type = probing::ProbeType::kSpoofedRecordRoute;
    demand.from = lab_->topo.vantage_points()[1];
    demand.target =
        lab_->topo.host(lab_->topo.probe_hosts()[host_index]).addr;
    demand.spoof_as =
        lab_->topo.host(lab_->topo.vantage_points()[0]).addr;
    demand.batch_ingress = ingress;
    return demand;
  }

  std::unique_ptr<eval::Lab> lab_;
};

TEST_F(SchedFixture, ExecuteDemandMirrorsProber) {
  // The staged stages see exactly what a direct prober call would return:
  // outcomes are content-addressed, so re-executing the same demand on the
  // same simulated world reproduces the reply byte for byte.
  const ProbeDemand demand = ping_demand(0, 0);
  const auto outcome = execute_demand(lab_->prober, demand);
  const auto direct = lab_->prober.ping(demand.from, demand.target);
  EXPECT_EQ(outcome.responded, direct.responded);
  EXPECT_EQ(outcome.duration_us, direct.duration_us);
  EXPECT_EQ(outcome.packets, 1u);

  ProbeDemand trace;
  trace.type = probing::ProbeType::kTraceroute;
  trace.from = demand.from;
  trace.target = demand.target;
  const auto tr_outcome = execute_demand(lab_->prober, trace);
  EXPECT_EQ(tr_outcome.packets, tr_outcome.traceroute.hops.size());
}

TEST_F(SchedFixture, CoalescesIdenticalInFlightDemands) {
  obs::MetricsRegistry registry;
  SchedMetrics metrics(registry);
  ProbeScheduler scheduler;
  scheduler.set_metrics(&metrics);

  // Two tasks want the same probe while it is in flight: one wire probe,
  // identical outcomes fanned out, exactly one copy marked coalesced.
  scheduler.submit(1, 0, {ping_demand(0, 0)});
  scheduler.submit(2, 0, {ping_demand(0, 0)});
  const auto pumped = scheduler.pump(lab_->prober);
  EXPECT_EQ(pumped.issued, 1u);

  auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  ASSERT_EQ(ready[0].outcomes.size(), 1u);
  ASSERT_EQ(ready[1].outcomes.size(), 1u);
  EXPECT_EQ(ready[0].outcomes[0].digest(), ready[1].outcomes[0].digest());
  EXPECT_NE(ready[0].outcomes[0].coalesced, ready[1].outcomes[0].coalesced);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.demanded, 2u);
  EXPECT_EQ(stats.issued, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(metrics.demanded->total(), 2u);
  EXPECT_EQ(metrics.issued->total(), 1u);
  EXPECT_EQ(metrics.coalesced->total(), 1u);
  EXPECT_TRUE(scheduler.idle());
}

TEST_F(SchedFixture, CoalescingDisabledIssuesEveryDemand) {
  SchedOptions options;
  options.coalesce = false;
  ProbeScheduler scheduler(options);
  scheduler.submit(1, 0, {ping_demand(0, 0)});
  scheduler.submit(2, 0, {ping_demand(0, 0)});
  const auto pumped = scheduler.pump(lab_->prober);
  EXPECT_EQ(pumped.issued, 2u);
  const auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_FALSE(ready[0].outcomes[0].coalesced);
  EXPECT_FALSE(ready[1].outcomes[0].coalesced);
  EXPECT_EQ(scheduler.stats().coalesced, 0u);
}

TEST_F(SchedFixture, PerVpWindowDefersToLaterRounds) {
  SchedOptions options;
  options.vp_window = 1;
  ProbeScheduler scheduler(options);
  // Three distinct probes from one vantage point, window 1: one issue per
  // round, the rest stay queued (deferred, not dropped — liveness).
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(0, 1),
                          ping_demand(0, 2)});
  EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u);
  EXPECT_TRUE(scheduler.collect_ready(0).empty());
  EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u);
  EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u);
  const auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].outcomes.size(), 3u);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.throttled, 3u);  // Two deferred in round 1, one in round 2.
}

TEST_F(SchedFixture, TokenBucketPacesAcrossRounds) {
  SchedOptions options;
  options.vp_window = 8;  // Window alone would allow both at once.
  options.vp_tokens_per_round = 1;
  options.vp_token_burst = 1;
  ProbeScheduler scheduler(options);
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(0, 1)});
  EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u);
  EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u);
  EXPECT_EQ(scheduler.stats().rounds, 2u);
  ASSERT_EQ(scheduler.collect_ready(0).size(), 1u);
  EXPECT_TRUE(scheduler.idle());
}

TEST_F(SchedFixture, FractionalPacingIssuesOnExactCadence) {
  // A refill rate below one token per round is legal: 0.5 is exact in the
  // scheduler's fixed point, so the cadence is one probe every second round
  // with zero drift over the whole horizon.
  SchedOptions options;
  options.vp_window = 8;  // The window alone would allow everything at once.
  options.vp_tokens_per_round = 0.5;
  options.vp_token_burst = 1;
  ProbeScheduler scheduler(options);
  std::vector<ProbeDemand> demands;
  for (std::size_t i = 0; i < 15; ++i) demands.push_back(ping_demand(0, i));
  scheduler.submit(1, 0, std::move(demands));
  for (std::size_t probe = 0; probe < 15; ++probe) {
    EXPECT_EQ(scheduler.pump(lab_->prober).issued, 0u) << "probe " << probe;
    EXPECT_EQ(scheduler.pump(lab_->prober).issued, 1u) << "probe " << probe;
  }
  ASSERT_EQ(scheduler.collect_ready(0).size(), 1u);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.stats().rounds, 30u);
}

TEST_F(SchedFixture, SubUnityPacingNeverStarvesOverLongHorizons) {
  // 1/3 token per round is NOT exact in fixed point (the refill rounds
  // down), which is precisely the drift hazard this test pins: queued
  // demands must still drain on an (almost exactly) three-round cadence —
  // deferred forever is the failure mode the ctor clamp rules out.
  SchedOptions options;
  options.vp_window = 8;
  options.vp_tokens_per_round = 1.0 / 3.0;
  options.vp_token_burst = 2;
  ProbeScheduler scheduler(options);
  std::vector<ProbeDemand> demands;
  for (std::size_t i = 0; i < 18; ++i) demands.push_back(ping_demand(0, i));
  scheduler.submit(1, 0, std::move(demands));
  std::size_t issued = 0;
  std::size_t rounds = 0;
  while (issued < 18 && rounds < 100) {
    issued += scheduler.pump(lab_->prober).issued;
    ++rounds;
  }
  EXPECT_EQ(issued, 18u);
  // Exactly ceil(k / (1/3 rounded down to fixed point)) rounds for the k-th
  // probe: 4, 7, 10, ... — the sub-token remainder carries across rounds
  // instead of being lost, so the long-horizon rate stays 1/3.
  EXPECT_EQ(rounds, 55u);
  ASSERT_EQ(scheduler.collect_ready(0).size(), 1u);
  EXPECT_TRUE(scheduler.idle());
}

TEST_F(SchedFixture, SpoofedBatchesGroupAcrossTasks) {
  const net::Ipv4Addr ingress_x(0x0a000001);
  const net::Ipv4Addr ingress_y(0x0a000002);
  ProbeScheduler scheduler;
  // Four same-ingress spoofed probes from two different tasks fill two
  // 3-probe wire batches (3 + 1); the other ingress gets its own batch.
  scheduler.submit(1, 0,
                   {spoofed_demand(0, ingress_x), spoofed_demand(1, ingress_x)});
  scheduler.submit(2, 0,
                   {spoofed_demand(2, ingress_x), spoofed_demand(3, ingress_x),
                    spoofed_demand(4, ingress_y)});
  const auto pumped = scheduler.pump(lab_->prober);
  EXPECT_EQ(pumped.issued, 5u);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.wire_batches, 3u);
  EXPECT_EQ(scheduler.collect_ready(0).size(), 2u);
}

TEST_F(SchedFixture, OfflineDemandRunsClosureOffTheWire) {
  ProbeScheduler scheduler;
  ProbeDemand offline;
  offline.offline_work = [] {
    probing::ProbeCounters counters;
    counters.ping = 7;
    return counters;
  };
  scheduler.submit(1, 0, {std::move(offline)});
  const auto pumped = scheduler.pump(lab_->prober);
  EXPECT_EQ(pumped.issued, 0u);  // Offline jobs are not wire probes.
  auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].outcomes[0].offline_probes.ping, 7u);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.offline_jobs, 1u);
  EXPECT_EQ(stats.issued, 0u);
}

TEST_F(SchedFixture, AuditSatisfiesI7AndCatchesTampering) {
  SchedOptions options;
  ProbeScheduler scheduler(options);
  SchedulerAudit audit;
  scheduler.set_audit(&audit);
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(1, 1)});
  scheduler.submit(2, 0, {ping_demand(0, 0)});
  scheduler.pump(lab_->prober);
  ASSERT_EQ(scheduler.collect_ready(0).size(), 2u);
  ASSERT_EQ(audit.issues.size(), 2u);
  ASSERT_EQ(audit.deliveries.size(), 1u);  // The coalesced rider.

  EXPECT_TRUE(analysis::check_scheduler(audit, options).empty());

  // A delivery whose outcome differs from the issued probe's breaks the
  // coalescing-is-invisible property I7 exists to catch.
  SchedulerAudit tampered = audit;
  tampered.deliveries[0].digest ^= 1;
  EXPECT_FALSE(analysis::check_scheduler(tampered, options).empty());

  // A delivery riding a probe that never went on the wire.
  tampered = audit;
  tampered.deliveries[0].issue_id = 9999;
  EXPECT_FALSE(analysis::check_scheduler(tampered, options).empty());

  // More same-round issues from one VP than the window permits.
  SchedulerAudit overdriven;
  for (std::uint64_t i = 0; i < 3; ++i) {
    overdriven.issues.push_back(SchedulerAudit::Issue{
        i, i, /*round=*/1, lab_->topo.vantage_points()[0], false, i});
  }
  SchedOptions narrow;
  narrow.vp_window = 2;
  EXPECT_FALSE(analysis::check_scheduler(overdriven, narrow).empty());
}

// --- Remote dispatcher (controller/agent split, DESIGN.md §15). ------------

TEST_F(SchedFixture, DispatcherAssignsAndDeliversLikeAPump) {
  ProbeScheduler scheduler;
  const auto agent = scheduler.attach_agent(/*window=*/8);
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(1, 1)});

  const auto assignments = scheduler.next_assignments(agent);
  ASSERT_EQ(assignments.size(), 2u);
  // The wire spec is exactly what a local pump would have executed.
  EXPECT_EQ(assignments[0].spec, spec_of(ping_demand(0, 0)));
  EXPECT_EQ(assignments[1].spec, spec_of(ping_demand(1, 1)));
  EXPECT_EQ(scheduler.assigned_in_flight(), 2u);

  // An agent executes on its own prober; here the lab's stands in (the
  // outcome is content-addressed, so whose prober is irrelevant).
  for (const auto& assignment : assignments) {
    const auto reply = probing::execute_spec(lab_->prober, assignment.spec);
    EXPECT_TRUE(scheduler.deliver_assignment(agent, assignment.ticket, reply));
  }
  EXPECT_EQ(scheduler.assigned_in_flight(), 0u);
  auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].outcomes.size(), 2u);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.stats().issued, 2u);
}

TEST_F(SchedFixture, DispatcherHonorsAgentWindowAcrossAgents) {
  ProbeScheduler scheduler;
  const auto narrow = scheduler.attach_agent(/*window=*/1);
  const auto wide = scheduler.attach_agent(/*window=*/8);
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(1, 1),
                          ping_demand(2, 2)});

  // The narrow agent holds one assignment; the rest spill to the wide one.
  const auto first = scheduler.next_assignments(narrow);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(scheduler.next_assignments(narrow).empty());  // Window full.
  const auto rest = scheduler.next_assignments(wide);
  ASSERT_EQ(rest.size(), 2u);

  // Delivering frees the narrow agent's slot for the next dispatch.
  const auto reply = probing::execute_spec(lab_->prober, first[0].spec);
  EXPECT_TRUE(scheduler.deliver_assignment(narrow, first[0].ticket, reply));
  scheduler.submit(2, 0, {ping_demand(3, 3)});
  EXPECT_EQ(scheduler.next_assignments(narrow).size(), 1u);
}

TEST_F(SchedFixture, DispatcherCoalescesRidersOntoAssignedProbes) {
  ProbeScheduler scheduler;
  const auto agent = scheduler.attach_agent(/*window=*/8);
  scheduler.submit(1, 0, {ping_demand(0, 0)});
  const auto assignments = scheduler.next_assignments(agent);
  ASSERT_EQ(assignments.size(), 1u);

  // A second request wants the same probe while it is in flight on the
  // agent: it coalesces onto the assignment instead of dispatching again.
  scheduler.submit(2, 0, {ping_demand(0, 0)});
  EXPECT_TRUE(scheduler.next_assignments(agent).empty());

  const auto reply = probing::execute_spec(lab_->prober, assignments[0].spec);
  EXPECT_TRUE(
      scheduler.deliver_assignment(agent, assignments[0].ticket, reply));
  auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].outcomes[0].digest(), ready[1].outcomes[0].digest());
  EXPECT_NE(ready[0].outcomes[0].coalesced, ready[1].outcomes[0].coalesced);
  EXPECT_EQ(scheduler.stats().coalesced, 1u);
  EXPECT_EQ(scheduler.stats().issued, 1u);
}

TEST_F(SchedFixture, DetachRequeuesInFlightForReassignmentWithI7Intact) {
  SchedOptions options;
  ProbeScheduler scheduler(options);
  SchedulerAudit audit;
  scheduler.set_audit(&audit);
  const auto doomed = scheduler.attach_agent(/*window=*/8);
  scheduler.submit(1, 0, {ping_demand(0, 0), ping_demand(1, 1),
                          ping_demand(2, 2)});
  const auto lost = scheduler.next_assignments(doomed);
  ASSERT_EQ(lost.size(), 3u);

  // The agent dies with everything in flight: detaching requeues all three
  // at the head of the queue, in ticket order.
  EXPECT_EQ(scheduler.detach_agent(doomed), 3u);
  EXPECT_EQ(scheduler.stats().reassigned, 3u);
  EXPECT_EQ(scheduler.assigned_in_flight(), 0u);

  const auto heir = scheduler.attach_agent(/*window=*/8);
  const auto retried = scheduler.next_assignments(heir);
  ASSERT_EQ(retried.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(retried[i].spec, lost[i].spec) << "requeue reordered " << i;
    EXPECT_NE(retried[i].ticket, lost[i].ticket);  // Tickets never reused.
  }

  // A late reply from the dead agent is stale: dropped, not double-applied.
  const auto zombie = probing::execute_spec(lab_->prober, lost[0].spec);
  EXPECT_FALSE(scheduler.deliver_assignment(doomed, lost[0].ticket, zombie));
  EXPECT_EQ(scheduler.stats().stale_results, 1u);

  for (const auto& assignment : retried) {
    const auto reply = probing::execute_spec(lab_->prober, assignment.spec);
    EXPECT_TRUE(scheduler.deliver_assignment(heir, assignment.ticket, reply));
    // A duplicate delivery of the same ticket is also stale.
    EXPECT_FALSE(
        scheduler.deliver_assignment(heir, assignment.ticket, reply));
  }
  ASSERT_EQ(scheduler.collect_ready(0).size(), 1u);
  EXPECT_TRUE(scheduler.idle());

  // Each request resolved exactly once (no double delivery through the
  // crash) and the audit still satisfies I7: assignment rounds respect the
  // per-(round, VP) window even though delivery happened much later.
  EXPECT_EQ(audit.issues.size(), 3u);
  EXPECT_TRUE(analysis::check_scheduler(audit, options).empty());
}

TEST_F(SchedFixture, ExpireAgentsDetachesSilentOnes) {
  ProbeScheduler scheduler;
  const auto quiet = scheduler.attach_agent(/*window=*/8, /*now_us=*/0);
  const auto chatty = scheduler.attach_agent(/*window=*/8, /*now_us=*/0);
  scheduler.submit(1, 0, {ping_demand(0, 0)});
  ASSERT_EQ(scheduler.next_assignments(quiet).size(), 1u);

  scheduler.agent_heartbeat(chatty, 900'000);
  const auto expired =
      scheduler.expire_agents(/*now_us=*/1'000'000, /*timeout_us=*/500'000);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], quiet);
  EXPECT_EQ(scheduler.stats().agents_expired, 1u);
  EXPECT_EQ(scheduler.stats().reassigned, 1u);

  // The expired agent's probe requeued; the survivor picks it up.
  EXPECT_EQ(scheduler.next_assignments(chatty).size(), 1u);
  // Expiry is idempotent — the survivor heartbeated recently.
  EXPECT_TRUE(
      scheduler.expire_agents(1'000'000, 500'000).empty());
}

TEST_F(SchedFixture, OfflineJobsNeverDispatchButAnyWorkerStealsThem) {
  ProbeScheduler scheduler;
  const auto agent = scheduler.attach_agent(/*window=*/8);
  ProbeDemand offline;
  offline.offline_work = [] {
    probing::ProbeCounters counters;
    counters.traceroutes = 3;
    return counters;
  };
  scheduler.submit(1, 0, {std::move(offline), ping_demand(0, 0)});

  // Offline closures never cross the wire: the agent only sees the ping.
  const auto assignments = scheduler.next_assignments(agent);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].spec.type, probing::ProbeType::kPing);

  // Work stealing: whatever controller thread calls run_offline_jobs first
  // executes the closure.
  EXPECT_EQ(scheduler.run_offline_jobs(), 1u);
  EXPECT_EQ(scheduler.stats().offline_jobs, 1u);

  const auto reply = probing::execute_spec(lab_->prober, assignments[0].spec);
  EXPECT_TRUE(
      scheduler.deliver_assignment(agent, assignments[0].ticket, reply));
  auto ready = scheduler.collect_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].outcomes.size(), 2u);
  EXPECT_EQ(ready[0].outcomes[0].offline_probes.traceroutes, 3u);
}

}  // namespace
}  // namespace revtr::sched
