#include "agent/agent.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <span>
#include <thread>
#include <utility>
#include <variant>

#include "probing/transport.h"
#include "util/rng.h"

namespace revtr::agent {

using server::AgentDrain;
using server::AgentHeartbeat;
using server::AgentProbe;
using server::AgentProbeResult;
using server::AgentRegister;
using server::FrameError;
using server::HelloOk;
using server::Message;

namespace {

// One agent per process for signal routing (install_signal_handlers).
std::atomic<AgentDaemon*> g_signal_agent{nullptr};

void drain_signal_handler(int /*signum*/) {
  AgentDaemon* a = g_signal_agent.load(std::memory_order_acquire);
  if (a != nullptr) a->request_drain();
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AgentDaemon::AgentDaemon(AgentOptions options)
    : options_(std::move(options)) {}

AgentDaemon::~AgentDaemon() {
  if (fd_ >= 0) ::close(fd_);
  if (g_signal_agent.load(std::memory_order_acquire) == this) {
    install_signal_handlers(nullptr);
  }
}

void AgentDaemon::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
}

void AgentDaemon::install_signal_handlers(AgentDaemon* agent) {
  g_signal_agent.store(agent, std::memory_order_release);
  if (agent != nullptr) {
    std::signal(SIGTERM, drain_signal_handler);
    std::signal(SIGINT, drain_signal_handler);
  } else {
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
  }
}

AgentCounters AgentDaemon::counters() const {
  const util::MutexLock lock(mu_);
  return counters_;
}

bool AgentDaemon::connect_to_controller() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  // Retry while the controller is still binding, like DaemonClient.
  for (int attempt = 0; attempt <= 50; ++attempt) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      return true;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool AgentDaemon::send_frame(const Message& message) {
  if (fd_ < 0) return false;
  const auto frame = server::encode_frame(message);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        write(fd_, frame.data() + written, frame.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Message> AgentDaemon::read_frame(int wait_ms, bool* fatal,
                                               bool* eof) {
  *fatal = false;
  *eof = false;
  if (fd_ < 0) {
    *eof = true;
    return std::nullopt;
  }
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    const std::span<const std::uint8_t> avail(in_);
    if (avail.size() >= server::kFrameHeaderSize) {
      FrameError error = FrameError::kNone;
      const auto header = server::decode_frame_header(avail, &error);
      if (!header.has_value()) {
        *fatal = true;
        return std::nullopt;
      }
      const std::size_t total = server::kFrameHeaderSize + header->payload_len;
      if (avail.size() >= total) {
        auto decoded = server::decode_payload(
            header->type,
            avail.subspan(server::kFrameHeaderSize, header->payload_len),
            &error);
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(total));
        if (!decoded.has_value()) *fatal = true;
        return decoded;
      }
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc == 0) return std::nullopt;  // Timeout; caller heartbeats.
    if (rc < 0) {
      if (errno == EINTR) {
        // A drain signal may have landed; let the caller's loop notice.
        if (drain_requested_.load(std::memory_order_acquire)) {
          return std::nullopt;
        }
        continue;
      }
      *fatal = true;
      return std::nullopt;
    }
    const ssize_t n = read(fd_, buf.data(), buf.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      *eof = true;  // Controller hung up (or hard error).
      return std::nullopt;
    }
    in_.insert(in_.end(), buf.data(), buf.data() + n);
  }
}

void AgentDaemon::pace(topology::HostId vp) {
  if (options_.probes_per_sec <= 0.0) return;
  Pacer& pacer = pacers_[vp];
  const double burst = static_cast<double>(std::max<std::size_t>(
      options_.window, 1));
  for (;;) {
    const std::int64_t now = wall_now_us();
    if (pacer.last_refill_us == 0) {
      pacer.last_refill_us = now;
      pacer.tokens = burst;
    }
    const double elapsed_s =
        static_cast<double>(now - pacer.last_refill_us) / 1e6;
    pacer.tokens = std::min(burst,
                            pacer.tokens + elapsed_s * options_.probes_per_sec);
    pacer.last_refill_us = now;
    if (pacer.tokens >= 1.0) {
      pacer.tokens -= 1.0;
      return;
    }
    // Sleep out the deficit (bounded so a drain signal is noticed soon).
    const double wait_s = (1.0 - pacer.tokens) / options_.probes_per_sec;
    const auto wait_us = static_cast<std::int64_t>(wait_s * 1e6) + 1;
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min<std::int64_t>(wait_us, 50'000)));
    if (drain_requested_.load(std::memory_order_acquire)) {
      // Drain beats pacing: execute immediately rather than stall the
      // controller's drain on a rate limit.
      return;
    }
  }
}

bool AgentDaemon::handle_assignment(const AgentProbe& probe) {
  probing::ProbeReply reply;
  // The spec arrived off the wire: the codec bounded every field, but only
  // the agent knows its own topology — refuse a vantage point outside it
  // (answered unresponsive, so the controller's request still resolves).
  if (probe.spec.from == topology::kInvalidId ||
      probe.spec.from >= lab_->topo.num_hosts()) {
    const util::MutexLock lock(mu_);
    ++counters_.invalid_specs;
  } else {
    pace(probe.spec.from);
    reply = probing::execute_spec(*prober_, probe.spec);
  }
  std::uint64_t executed = 0;
  {
    const util::MutexLock lock(mu_);
    executed = ++counters_.executed;
  }
  if (!send_frame(AgentProbeResult{probe.ticket, std::move(reply)})) {
    return false;
  }
  if (options_.die_after_probes > 0 && executed >= options_.die_after_probes) {
    // Crash hook: vanish abruptly, leaving every unanswered assignment in
    // flight for the controller to reassign.
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool AgentDaemon::run() {
  // The agent's half of the simulated Internet: same topology config, same
  // seed derivation as ServerDaemon::start(), so execute_spec here returns
  // byte-identical replies to a controller-local prober.
  lab_ = std::make_unique<eval::Lab>(options_.topo,
                                     core::EngineConfig::revtr2(),
                                     options_.seed);
  const std::uint64_t net_seed = util::mix_hash(options_.seed, 0x6e7ULL);
  network_ =
      std::make_unique<sim::Network>(lab_->topo, lab_->plane, net_seed);
  prober_ = std::make_unique<probing::Prober>(*network_);

  if (!connect_to_controller()) {
    std::fprintf(stderr, "revtr_agentd: cannot connect to %s\n",
                 options_.socket_path.c_str());
    return false;
  }
  AgentRegister reg;
  reg.proto_version = server::kProtoVersion;
  reg.window = static_cast<std::uint32_t>(options_.window);
  reg.name = options_.name;
  if (!send_frame(reg)) return false;

  bool fatal = false;
  bool eof = false;
  const auto ack = read_frame(/*wait_ms=*/-1, &fatal, &eof);
  if (!ack.has_value() || !std::holds_alternative<HelloOk>(*ack)) {
    std::fprintf(stderr, "revtr_agentd: register rejected\n");
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  agent_id_.store(std::get<HelloOk>(*ack).tenant, std::memory_order_release);

  const int heartbeat_ms =
      static_cast<int>(std::max<std::int64_t>(options_.heartbeat_interval_ms,
                                              1));
  auto last_beat = std::chrono::steady_clock::now();
  bool draining = false;
  bool clean = false;
  while (fd_ >= 0) {
    if (drain_requested_.load(std::memory_order_acquire)) draining = true;
    if (draining) {
      // Everything read has been answered; say goodbye and leave. The
      // controller detaches us and requeues anything it still had queued
      // for this connection.
      std::uint64_t executed = 0;
      {
        const util::MutexLock lock(mu_);
        executed = counters_.executed;
      }
      send_frame(AgentDrain{executed});
      clean = true;
      break;
    }
    auto message = read_frame(heartbeat_ms, &fatal, &eof);
    if (fatal) break;  // Protocol error: unclean exit.
    if (eof) {
      // Controller hung up. Nothing is half-answered (assignments are
      // handled synchronously), so this is a clean end.
      clean = true;
      break;
    }
    if (!message.has_value()) {
      // Timeout (or a drain signal interrupted the wait).
      const auto now = std::chrono::steady_clock::now();
      if (now - last_beat >= std::chrono::milliseconds(heartbeat_ms)) {
        std::uint64_t executed = 0;
        {
          const util::MutexLock lock(mu_);
          ++counters_.heartbeats;
          executed = counters_.executed;
        }
        if (!send_frame(AgentHeartbeat{0, executed})) break;
        last_beat = now;
      }
      continue;
    }
    if (const AgentProbe* probe = std::get_if<AgentProbe>(&*message)) {
      if (!handle_assignment(*probe)) break;
      continue;
    }
    if (std::holds_alternative<AgentDrain>(*message)) {
      draining = true;
      continue;
    }
    // Anything else from the controller is a protocol error.
    break;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  return clean;
}

}  // namespace revtr::agent
