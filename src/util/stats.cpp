#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace revtr::util {

Distribution::Distribution(const Distribution& other) {
  const MutexLock lock(other.mu_);
  samples_ = other.samples_;
  sum_ = other.sum_;
  sorted_ = other.sorted_;
}

Distribution& Distribution::operator=(const Distribution& other) {
  if (this == &other) return *this;
  // Distinct objects: lock both in a deadlock-free order.
  const ScopedLock2 lock(mu_, other.mu_);
  samples_ = other.samples_;
  sum_ = other.sum_;
  sorted_ = other.sorted_;
  return *this;
}

Distribution::Distribution(Distribution&& other) noexcept {
  const MutexLock lock(other.mu_);
  samples_ = std::move(other.samples_);
  sum_ = other.sum_;
  sorted_ = other.sorted_;
}

Distribution& Distribution::operator=(Distribution&& other) noexcept {
  if (this == &other) return *this;
  const ScopedLock2 lock(mu_, other.mu_);
  samples_ = std::move(other.samples_);
  sum_ = other.sum_;
  sorted_ = other.sorted_;
  return *this;
}

void Distribution::add(double sample) {
  const MutexLock lock(mu_);
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

void Distribution::add_all(std::span<const double> samples) {
  const MutexLock lock(mu_);
  for (double s : samples) {
    samples_.push_back(s);
    sum_ += s;
  }
  if (!samples.empty()) sorted_ = false;
}

std::size_t Distribution::count() const {
  const MutexLock lock(mu_);
  return samples_.size();
}

bool Distribution::empty() const {
  const MutexLock lock(mu_);
  return samples_.empty();
}

double Distribution::sum() const {
  const MutexLock lock(mu_);
  return sum_;
}

double Distribution::mean_locked() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Distribution::mean() const {
  const MutexLock lock(mu_);
  return mean_locked();
}

void Distribution::ensure_sorted_locked() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::min() const {
  const MutexLock lock(mu_);
  if (samples_.empty()) throw std::logic_error("Distribution::min on empty");
  ensure_sorted_locked();
  return samples_.front();
}

double Distribution::max() const {
  const MutexLock lock(mu_);
  if (samples_.empty()) throw std::logic_error("Distribution::max on empty");
  ensure_sorted_locked();
  return samples_.back();
}

double Distribution::stddev() const {
  const MutexLock lock(mu_);
  if (samples_.size() < 2) return 0.0;
  const double m = mean_locked();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::quantile(double q) const {
  const MutexLock lock(mu_);
  if (samples_.empty()) {
    throw std::logic_error("Distribution::quantile on empty");
  }
  ensure_sorted_locked();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::cdf_at(double x) const {
  const MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Distribution::ccdf_at(double x) const {
  const MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<double> Distribution::samples() const {
  const MutexLock lock(mu_);
  ensure_sorted_locked();
  return samples_;
}

std::vector<double> Distribution::cdf_curve(std::span<const double> xs) const {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(cdf_at(x));
  return ys;
}

std::vector<double> Distribution::ccdf_curve(
    std::span<const double> xs) const {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(ccdf_at(x));
  return ys;
}

std::uint64_t KeyedCounter::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t KeyedCounter::total() const {
  std::uint64_t acc = 0;
  for (const auto& [key, n] : counts_) acc += n;
  return acc;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs;
  if (n == 0) return xs;
  if (n == 1) {
    xs.push_back(lo);
    return xs;
  }
  xs.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(lo + step * static_cast<double>(i));
  }
  return xs;
}

}  // namespace revtr::util
