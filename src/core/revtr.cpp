#include "core/revtr.h"

#include <algorithm>

namespace revtr::core {

namespace {
using net::Ipv4Addr;
using topology::HostId;

std::uint64_t cache_key(Ipv4Addr addr, HostId source) {
  return util::mix_hash(addr.value(), source, 0xcace);
}

// RAII span over one engine stage: brackets the stage with sim-clock
// timestamps and attributes the stage's *online* probe delta to the span on
// close. Stages are the only spans that carry cost (the root "request" span
// reports 0), so summing span costs over a trace reproduces the request's
// ProbeCounters delta exactly — invariant I6.
class TraceStage {
 public:
  TraceStage(obs::Trace* trace, const probing::Prober& prober,
             const util::SimClock& clock, const char* name)
      : trace_(trace), prober_(prober), clock_(clock) {
    if (trace_ == nullptr) return;
    before_ = online_total(prober_);
    id_ = trace_->start_span(name, clock_.now());
  }
  ~TraceStage() {
    if (trace_ == nullptr) return;
    trace_->end_span(id_, clock_.now(), online_total(prober_) - before_);
  }
  TraceStage(const TraceStage&) = delete;
  TraceStage& operator=(const TraceStage&) = delete;

  void annotate(const char* key, std::string value) {
    if (trace_ != nullptr) trace_->annotate(id_, key, std::move(value));
  }

  static std::uint64_t online_total(const probing::Prober& prober) {
    return prober.counters().total() - prober.offline_counters().total();
  }

 private:
  obs::Trace* trace_;
  const probing::Prober& prober_;
  const util::SimClock& clock_;
  std::uint64_t before_ = 0;
  obs::Trace::SpanId id_ = obs::Trace::kDroppedSpan;
};
}  // namespace

std::string to_string(HopSource source) {
  switch (source) {
    case HopSource::kDestination:
      return "destination";
    case HopSource::kRecordRoute:
      return "rr";
    case HopSource::kSpoofedRecordRoute:
      return "spoofed-rr";
    case HopSource::kTimestamp:
      return "timestamp";
    case HopSource::kAtlasIntersection:
      return "atlas";
    case HopSource::kAssumedSymmetric:
      return "assumed-symmetric";
    case HopSource::kSuspiciousGap:
      return "*";
  }
  return "?";
}

std::string to_string(RevtrStatus status) {
  switch (status) {
    case RevtrStatus::kComplete:
      return "complete";
    case RevtrStatus::kAbortedInterdomainSymmetry:
      return "aborted-interdomain";
    case RevtrStatus::kUnreachable:
      return "unreachable";
  }
  return "?";
}

std::vector<Ipv4Addr> ReverseTraceroute::ip_hops() const {
  std::vector<Ipv4Addr> addrs;
  for (const auto& hop : hops) {
    if (hop.source != HopSource::kSuspiciousGap) addrs.push_back(hop.addr);
  }
  return addrs;
}

EngineConfig EngineConfig::revtr1() {
  EngineConfig config;
  config.use_ingress_selection = false;
  config.use_cache = false;
  config.use_timestamp = true;
  config.use_rr_atlas = false;
  config.allow_interdomain_symmetry = true;
  config.assume_from_unreachable_traceroute = true;
  config.flag_suspicious_links = false;
  return config;
}

EngineConfig EngineConfig::revtr2() { return EngineConfig{}; }

std::string EngineConfig::name() const {
  std::string name = use_ingress_selection ? "ingress" : "setcover";
  name += use_cache ? "+cache" : "";
  name += use_timestamp ? "+ts" : "";
  name += use_rr_atlas ? "+rratlas" : "";
  name += allow_interdomain_symmetry ? "+interdomain" : "";
  return name;
}

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry) {
  const auto status = [&registry](const char* value) {
    return &registry.counter(std::string("revtr_requests_total{status=\"") +
                             value + "\"}");
  };
  requests_complete = status("complete");
  requests_aborted = status("aborted-interdomain");
  requests_unreachable = status("unreachable");

  const auto stage = [&registry](const char* name, const char* outcome) {
    return &registry.counter(std::string("revtr_engine_stage_total{stage=\"") +
                             name + "\",outcome=\"" + outcome + "\"}");
  };
  atlas_hit = stage("atlas", "hit");
  atlas_miss = stage("atlas", "miss");
  rr_cache_replay = stage("rr", "cache-replay");
  rr_direct_hit = stage("rr", "direct-hit");
  rr_spoofed_hit = stage("rr", "spoofed-hit");
  rr_miss = stage("rr", "miss");
  rr_ingress_discovery = stage("rr", "ingress-discovery");
  ts_hit = stage("ts", "hit");
  ts_miss = stage("ts", "miss");
  ts_skipped = stage("ts", "skipped");
  symmetry_cached = stage("symmetry", "cached");
  symmetry_extended = stage("symmetry", "extended");
  symmetry_aborted = stage("symmetry", "aborted");
  symmetry_stuck = stage("symmetry", "stuck");

  dbr_suspects = &registry.counter("revtr_dbr_suspects_total");

  latency_us = &registry.histogram("revtr_request_latency_us");
  request_probes = &registry.histogram("revtr_request_probes");
  request_hops = &registry.histogram("revtr_request_hops");
  spoofed_batches = &registry.histogram("revtr_request_spoofed_batches");
}

RevtrEngine::RevtrEngine(probing::Prober& prober,
                         const topology::Topology& topo,
                         atlas::TracerouteAtlas& atlas,
                         vpselect::IngressDiscovery& ingress,
                         const asmap::IpToAs& ip2as,
                         const asmap::AsRelationships& relationships,
                         EngineConfig config, std::uint64_t seed)
    : prober_(prober),
      topo_(topo),
      atlas_(atlas),
      ingress_(ingress),
      ip2as_(ip2as),
      relationships_(relationships),
      config_(config),
      rng_(seed),
      caches_(std::make_shared<EngineCaches>()) {}

void RevtrEngine::clear_caches() { caches_->clear(); }

std::vector<Ipv4Addr> RevtrEngine::extract_reverse_hops(
    std::span<const Ipv4Addr> slots, Ipv4Addr current) {
  // The reverse hops are the slots recorded after the probed hop stamped
  // itself on the way back to the (spoofed) source.
  for (std::size_t i = slots.size(); i-- > 0;) {
    if (slots[i] == current) {
      return {slots.begin() + static_cast<long>(i) + 1, slots.end()};
    }
  }
  // Destination stamped an alias twice (Appx C double-stamp).
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    if (slots[i] == slots[i + 1]) {
      return {slots.begin() + static_cast<long>(i) + 2, slots.end()};
    }
  }
  // Loop a ... a: everything after the second `a` is on the reverse path.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 2; j < slots.size(); ++j) {
      if (slots[i] == slots[j]) {
        return {slots.begin() + static_cast<long>(j) + 1, slots.end()};
      }
    }
  }
  return {};
}

bool RevtrEngine::already_in_path(const ReverseTraceroute& result,
                                  Ipv4Addr addr) const {
  for (const auto& hop : result.hops) {
    if (hop.source != HopSource::kSuspiciousGap && hop.addr == addr) {
      return true;
    }
  }
  return false;
}

bool RevtrEngine::append_reverse_hops(ReverseTraceroute& result,
                                      std::span<const Ipv4Addr> revealed,
                                      HopSource source, Ipv4Addr& current) {
  const Ipv4Addr src_addr = topo_.host(source_).addr;
  bool progressed = false;
  for (const Ipv4Addr addr : revealed) {
    if (addr.is_unspecified() || already_in_path(result, addr)) continue;
    result.hops.push_back(ReverseHop{addr, source});
    if (addr.is_private()) {
      result.has_private_hops = true;
      continue;  // Cannot continue the measurement from private space.
    }
    current = addr;
    progressed = true;
    if (addr == src_addr) break;  // Reached the source.
  }
  return progressed;
}

bool RevtrEngine::try_atlas(ReverseTraceroute& result, Ipv4Addr current,
                            util::SimClock& clock) {
  auto hit = atlas_.intersect(source_, current, config_.use_rr_atlas);
  if (!hit && aliases_ != nullptr) {
    hit = atlas_.intersect_with_aliases(source_, current, *aliases_);
  }
  if (!hit) {
    if (metrics_ != nullptr) metrics_->atlas_miss->add();
    return false;
  }
  if (metrics_ != nullptr) metrics_->atlas_hit->add();
  TraceStage stage(trace_, prober_, clock, "atlas-intersection");
  const auto age = atlas_.touch(source_, *hit, clock.now());
  result.intersected_age_us = age;
  result.used_stale_traceroute = age > config_.cache_ttl;
  stage.annotate("age_us", std::to_string(age));
  if (result.used_stale_traceroute) stage.annotate("stale", "1");
  const auto suffix = atlas_.suffix_after(source_, *hit);
  for (const Ipv4Addr addr : suffix) {
    if (already_in_path(result, addr)) continue;
    result.hops.push_back(ReverseHop{addr, HopSource::kAtlasIntersection});
    if (addr.is_private()) result.has_private_hops = true;
  }
  return true;
}

bool RevtrEngine::try_record_route(ReverseTraceroute& result,
                                   Ipv4Addr& current, util::SimClock& clock) {
  const Ipv4Addr src_addr = topo_.host(source_).addr;
  const std::uint64_t key = cache_key(current, source_);

  if (config_.use_cache) {
    if (const auto entry = caches_->rr.lookup(key);
        entry && entry->expires_at > clock.now()) {
      if (metrics_ != nullptr) metrics_->rr_cache_replay->add();
      TraceStage stage(trace_, prober_, clock, "rr-cache-replay");
      stage.annotate("hops", std::to_string(entry->reverse_hops.size()));
      return append_reverse_hops(result, entry->reverse_hops, entry->source,
                                 current);
    }
  }

  auto remember = [&](const std::vector<Ipv4Addr>& revealed,
                      HopSource how) {
    if (config_.use_cache) {
      caches_->rr.insert_or_assign(
          key, RrCacheEntry{revealed, how, clock.now() + config_.cache_ttl});
    }
  };

  // --- Direct RR ping from the source (Fig 1b). ---
  {
    TraceStage stage(trace_, prober_, clock, "rr-direct");
    const auto direct = prober_.rr_ping(source_, current);
    clock.advance(direct.duration_us);
    if (direct.responded) {
      const auto revealed = extract_reverse_hops(direct.slots, current);
      if (!revealed.empty() &&
          append_reverse_hops(result, revealed, HopSource::kRecordRoute,
                              current)) {
        remember(revealed, HopSource::kRecordRoute);
        stage.annotate("hit", "1");
        if (metrics_ != nullptr) metrics_->rr_direct_hit->add();
        return true;
      }
    }
  }

  // --- Spoofed RR pings from selected vantage points (Figs 1c/1d). ---
  const auto prefix = topo_.prefix_of(current);
  if (!prefix) {
    if (metrics_ != nullptr) metrics_->rr_miss->add();
    return false;
  }
  const vpselect::PrefixPlan* plan = ingress_.plan_for(*prefix);
  if (plan == nullptr) {
    // Offline background measurement run on demand: neither its time nor
    // its packets are charged to this request's online budget (Table 4
    // counts surveys separately); measure() reports the packets in
    // offline_probes instead.
    if (metrics_ != nullptr) metrics_->rr_ingress_discovery->add();
    TraceStage stage(trace_, prober_, clock, "ingress-discovery");
    const auto offline_before = prober_.offline_counters().total();
    const probing::Prober::OfflineScope offline(prober_);
    plan = &ingress_.discover(*prefix, topo_.vantage_points(), rng_);
    stage.annotate("offline_probes",
                   std::to_string(prober_.offline_counters().total() -
                                  offline_before));
  }

  std::vector<vpselect::Attempt> attempts;
  if (config_.use_ingress_selection) {
    attempts = vpselect::attempt_plan(*plan, config_.max_per_ingress);
  } else {
    // revtr 1.0: try every vantage point in per-prefix set-cover order.
    const auto order = vpselect::revtr1_vp_order(*plan);
    for (std::size_t i = 0; i < order.size(); ++i) {
      attempts.push_back(vpselect::Attempt{order[i], Ipv4Addr{}, i});
    }
  }

  std::unordered_map<std::size_t, int> rank_failures;
  std::size_t next = 0;
  while (next < attempts.size()) {
    std::vector<Ipv4Addr> revealed;
    std::size_t sent = 0;
    {
      // Span scope closes before DBR verification so the batch's probe
      // delta never includes the verify probe (I6 needs disjoint spans).
      TraceStage stage(trace_, prober_, clock, "rr-spoof-batch");
      while (next < attempts.size() && sent < config_.batch_size) {
        const auto& attempt = attempts[next++];
        if (rank_failures[attempt.ingress_rank] >= 5) continue;  // §4.3.
        const auto probe = prober_.rr_ping(attempt.vp, current, src_addr);
        ++sent;
        if (!probe.responded) {
          ++rank_failures[attempt.ingress_rank];
          continue;
        }
        if (!attempt.expected_ingress.is_unspecified() &&
            std::find(probe.slots.begin(), probe.slots.end(),
                      attempt.expected_ingress) == probe.slots.end()) {
          // Route did not transit the expected ingress; the next-closest VP
          // for this ingress will be tried in a later batch.
          ++rank_failures[attempt.ingress_rank];
        }
        const auto hops = extract_reverse_hops(probe.slots, current);
        if (hops.size() > revealed.size()) revealed = hops;
      }
      if (sent > 0) {
        // Spoofed replies land at the source; the controller always waits
        // out the batch timeout for stragglers (§5.2.4).
        clock.advance(config_.spoof_batch_timeout);
        ++result.spoofed_batches;
        stage.annotate("sent", std::to_string(sent));
      }
    }
    if (!revealed.empty()) {
      if (config_.verify_destination_based_routing && revealed.size() >= 2 &&
          !revealed[0].is_private()) {
        // Appx E redundancy: confirm the first revealed hop's next hop from
        // an independent vantage point.
        TraceStage stage(trace_, prober_, clock, "rr-dbr-verify");
        const auto vps = topo_.vantage_points();
        const auto check = prober_.rr_ping(vps[rng_.below(vps.size())],
                                           revealed[0], src_addr);
        clock.advance(check.duration_us);
        if (check.responded) {
          const auto recheck =
              extract_reverse_hops(check.slots, revealed[0]);
          if (!recheck.empty() && recheck.front() != revealed[1]) {
            result.dbr_suspect = true;
            stage.annotate("suspect", "1");
          }
        }
      }
      if (append_reverse_hops(result, revealed,
                              HopSource::kSpoofedRecordRoute, current)) {
        remember(revealed, HopSource::kSpoofedRecordRoute);
        if (metrics_ != nullptr) metrics_->rr_spoofed_hit->add();
        return true;
      }
    }
  }
  if (metrics_ != nullptr) metrics_->rr_miss->add();
  return false;
}

bool RevtrEngine::try_timestamp(ReverseTraceroute& result, Ipv4Addr& current,
                                util::SimClock& clock) {
  if (!adjacencies_) return false;
  TraceStage stage(trace_, prober_, clock, "timestamp");
  const auto candidates = adjacencies_(current);
  std::size_t tried = 0;
  for (const Ipv4Addr adjacent : candidates) {
    if (tried++ >= config_.max_ts_adjacencies) break;
    if (adjacent.is_private() || already_in_path(result, adjacent)) continue;
    const Ipv4Addr prespec[] = {current, adjacent};
    auto probe = prober_.ts_ping(source_, current, prespec);
    clock.advance(probe.duration_us);
    if (!probe.responded) {
      // Direct TS filtered: retry once spoofed from a vantage point, as the
      // 2010 system did (Table 4's "Spoof TS" column).
      const auto vps = topo_.vantage_points();
      if (!vps.empty()) {
        probe = prober_.ts_ping(vps[rng_.below(vps.size())], current, prespec,
                                topo_.host(source_).addr);
        clock.advance(config_.spoof_batch_timeout / 2);
      }
    }
    if (probe.responded && probe.stamped.size() == 2 && probe.stamped[0] &&
        probe.stamped[1]) {
      result.hops.push_back(ReverseHop{adjacent, HopSource::kTimestamp});
      current = adjacent;
      stage.annotate("hit", "1");
      if (metrics_ != nullptr) metrics_->ts_hit->add();
      return true;
    }
  }
  if (metrics_ != nullptr) metrics_->ts_miss->add();
  return false;
}

RevtrEngine::SymmetryOutcome RevtrEngine::try_symmetry(
    ReverseTraceroute& result, Ipv4Addr& current, util::SimClock& clock) {
  TraceStage stage(trace_, prober_, clock, "symmetry");
  const std::uint64_t key = cache_key(current, source_);
  std::optional<Ipv4Addr> penultimate;
  bool reached = false;

  const auto cached = config_.use_cache ? caches_->tr.lookup(key)
                                        : std::nullopt;
  if (cached && cached->expires_at > clock.now()) {
    penultimate = cached->penultimate;
    reached = cached->reached;
    stage.annotate("cached", "1");
    if (metrics_ != nullptr) metrics_->symmetry_cached->add();
  } else {
    const auto tr = prober_.traceroute(source_, current);
    clock.advance(tr.duration_us);
    reached = tr.reached;
    if (!tr.reached && config_.assume_from_unreachable_traceroute) {
      // 2010 behaviour: treat the last responsive hop as the next reverse
      // hop even though the traceroute fell short of the current hop.
      for (std::size_t i = tr.hops.size(); i-- > 0;) {
        if (tr.hops[i].addr) {
          penultimate = tr.hops[i].addr;
          reached = true;
          break;
        }
      }
    }
    if (tr.reached && tr.hops.size() >= 2) {
      // Last responsive hop before the destination.
      for (std::size_t i = tr.hops.size() - 1; i-- > 0;) {
        if (tr.hops[i].addr) {
          penultimate = tr.hops[i].addr;
          break;
        }
      }
    } else if (tr.reached && tr.hops.size() == 1) {
      // The current hop is directly adjacent to the source: the reverse
      // path is done once we step onto the source itself.
      penultimate = topo_.host(source_).addr;
    }
    if (config_.use_cache) {
      caches_->tr.insert_or_assign(
          key,
          TrCacheEntry{penultimate, reached, clock.now() + config_.cache_ttl});
    }
  }

  const auto report = [this, &stage](const char* outcome,
                                     obs::Counter* counter) {
    stage.annotate("outcome", outcome);
    if (metrics_ != nullptr) counter->add();
  };
  if (!reached || !penultimate || already_in_path(result, *penultimate)) {
    report("stuck", metrics_ != nullptr ? metrics_->symmetry_stuck : nullptr);
    return SymmetryOutcome::kStuck;
  }

  const auto as_p = ip2as_.lookup(*penultimate);
  const auto as_c = ip2as_.lookup(current);
  const bool intradomain = as_p && as_c && *as_p == *as_c;
  if (!intradomain && !config_.allow_interdomain_symmetry) {
    // Q5: interdomain symmetry is right only ~57% of the time — abort
    // rather than return an untrustworthy path (Insight 1.10).
    report("aborted",
           metrics_ != nullptr ? metrics_->symmetry_aborted : nullptr);
    return SymmetryOutcome::kAborted;
  }
  if (!intradomain) result.used_interdomain_symmetry = true;
  ++result.symmetry_assumptions;
  result.hops.push_back(
      ReverseHop{*penultimate, HopSource::kAssumedSymmetric});
  current = *penultimate;
  stage.annotate("intradomain", intradomain ? "1" : "0");
  report("extended",
         metrics_ != nullptr ? metrics_->symmetry_extended : nullptr);
  return SymmetryOutcome::kExtended;
}

void RevtrEngine::finalize_flags(ReverseTraceroute& result) {
  if (!config_.flag_suspicious_links || !result.complete()) return;
  const auto addrs = result.ip_hops();
  const auto as_path = ip2as_.as_path(addrs);
  const auto suspicious = relationships_.suspicious_links_in(as_path);
  if (suspicious.empty()) return;
  result.has_suspicious_gap = true;
  // Insert a "*" at the IP-level boundary of each suspicious AS pair.
  for (const std::size_t link : suspicious) {
    const topology::Asn from_as = as_path[link];
    const topology::Asn to_as = as_path[link + 1];
    for (std::size_t h = 0; h + 1 < result.hops.size(); ++h) {
      if (result.hops[h].source == HopSource::kSuspiciousGap ||
          result.hops[h + 1].source == HopSource::kSuspiciousGap) {
        continue;
      }
      const auto a = ip2as_.lookup(result.hops[h].addr);
      const auto b = ip2as_.lookup(result.hops[h + 1].addr);
      if (a && b && *a == from_as && *b == to_as) {
        result.hops.insert(
            result.hops.begin() + static_cast<long>(h) + 1,
            ReverseHop{Ipv4Addr{}, HopSource::kSuspiciousGap});
        break;
      }
    }
  }
}

ReverseTraceroute RevtrEngine::measure(HostId destination, HostId source,
                                       util::SimClock& clock) {
  source_ = source;
  ReverseTraceroute result;
  result.destination = destination;
  result.source = source;
  result.span.begin = clock.now();
  const auto counters_before = prober_.counters();
  const auto offline_before = prober_.offline_counters();

  obs::Trace::SpanId root_span = obs::Trace::kDroppedSpan;
  if (trace_ != nullptr) {
    trace_->destination = destination;
    trace_->source = source;
    root_span = trace_->start_span("request", clock.now());
  }

  const Ipv4Addr src_addr = topo_.host(source).addr;
  Ipv4Addr current = topo_.host(destination).addr;
  result.hops.push_back(ReverseHop{current, HopSource::kDestination});

  bool decided = false;
  while (result.hops.size() < config_.max_reverse_hops) {
    if (current == src_addr) {
      result.status = RevtrStatus::kComplete;
      decided = true;
      break;
    }
    if (try_atlas(result, current, clock)) {
      result.status = RevtrStatus::kComplete;
      decided = true;
      break;
    }
    if (try_record_route(result, current, clock)) continue;
    if (config_.use_timestamp) {
      if (try_timestamp(result, current, clock)) continue;
    } else {
      // RR made no progress and the TS technique is compiled out of the
      // preset (Insight 1.9): record the decision, it costs nothing.
      if (metrics_ != nullptr) metrics_->ts_skipped->add();
      if (trace_ != nullptr) trace_->event("ts-skipped", clock.now());
    }
    const auto outcome = try_symmetry(result, current, clock);
    if (outcome == SymmetryOutcome::kExtended) continue;
    result.status = outcome == SymmetryOutcome::kAborted
                        ? RevtrStatus::kAbortedInterdomainSymmetry
                        : RevtrStatus::kUnreachable;
    decided = true;
    break;
  }
  if (!decided) result.status = RevtrStatus::kUnreachable;

  result.span.end = clock.now();
  result.offline_probes = prober_.offline_counters() - offline_before;
  result.probes =
      (prober_.counters() - counters_before) - result.offline_probes;
  finalize_flags(result);

  if (trace_ != nullptr) {
    trace_->annotate(root_span, "status", to_string(result.status));
    // The root carries no cost of its own; stage spans own every probe
    // (I6: sum over spans == result.probes.total()).
    trace_->end_span(root_span, clock.now(), 0);
  }
  if (metrics_ != nullptr) {
    switch (result.status) {
      case RevtrStatus::kComplete:
        metrics_->requests_complete->add();
        break;
      case RevtrStatus::kAbortedInterdomainSymmetry:
        metrics_->requests_aborted->add();
        break;
      case RevtrStatus::kUnreachable:
        metrics_->requests_unreachable->add();
        break;
    }
    if (result.dbr_suspect) metrics_->dbr_suspects->add();
    metrics_->latency_us->record(
        static_cast<std::uint64_t>(result.span.duration()));
    metrics_->request_probes->record(result.probes.total());
    metrics_->request_hops->record(result.hops.size());
    metrics_->spoofed_batches->record(result.spoofed_batches);
  }
  return result;
}

}  // namespace revtr::core
