// Operating Reverse Traceroute as a service (Appx A).
//
// The paper's deployment is open to external users: users register, add
// their own hosts as sources (a ~15-minute bootstrap builds the source's
// traceroute atlas and Q2 RR index and verifies the source can receive RR
// packets), and issue rate-limited measurement requests. This module models
// that operational layer on top of the engine, including the batch campaign
// driver whose simulated-time accounting backs the throughput and latency
// numbers (§5.1, §5.2.4, Fig 5c).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/revtr.h"
#include "obs/metrics.h"
#include "service/archive.h"
#include "util/sim_clock.h"
#include "util/stats.h"

namespace revtr::service {

using UserId = std::uint32_t;

struct UserLimits {
  std::size_t max_parallel = 8;
  std::size_t daily_limit = 100000;
  // Per-day wire-probe budget. Requests are also metered by the packets
  // they cost, not just their count: a single request can demand hundreds
  // of probes (RR fan-out, spoofed batches), and the deployment's scarce
  // resource is vantage-point probing capacity.
  std::uint64_t daily_probe_budget = 1'000'000;
};

// The probe cost of one measurement against a user's daily probe budget.
// `demanded` counts every probe the measurement asked for; `refunded`
// counts the demands the scheduler satisfied by coalescing onto another
// request's in-flight probe — no wire packet was spent on those, so they
// are handed back and the net charge covers uniquely-issued probes only.
struct ProbeCharge {
  std::uint64_t demanded = 0;  // Issued + coalesced.
  std::uint64_t refunded = 0;  // Coalesced duplicates (no wire cost).
  std::uint64_t net() const noexcept { return demanded - refunded; }
};
ProbeCharge probe_cost_of(const core::ReverseTraceroute& result) noexcept;

struct SourceRecord {
  topology::HostId host = topology::kInvalidId;
  bool receives_rr = false;
  util::SimClock::Micros bootstrapped_at = 0;
  util::SimClock::Micros bootstrap_duration = 0;
  util::SimClock::Micros atlas_refreshed_at = 0;
  std::size_t atlas_size = 0;
};

// Per-request tuning knobs the real API exposes (Appx A): how stale the
// atlas may be, and whether to bundle a forward traceroute.
struct RequestOptions {
  // 0 = accept any staleness. Otherwise the source's atlas is refreshed
  // before measuring if it is older than this.
  util::SimClock::Micros max_atlas_age = 0;
  bool with_forward_traceroute = false;
};

struct ServedMeasurement {
  core::ReverseTraceroute reverse;
  std::optional<probing::TracerouteResult> forward;
  bool atlas_refreshed = false;  // Request triggered an atlas refresh.
};

struct CampaignStats {
  std::size_t requested = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  std::size_t unreachable = 0;
  probing::ProbeCounters probes;
  util::Distribution latency_seconds;
  double busy_seconds = 0;      // Summed measurement latencies.
  // Modelled campaigns: busy / parallelism. Real parallel campaigns
  // (service/parallel.h): the busiest worker's simulated time.
  double duration_seconds = 0;

  double coverage() const noexcept {
    return requested == 0 ? 0.0
                          : static_cast<double>(completed) /
                                static_cast<double>(requested);
  }
  // Requests disposed of per second of campaign duration, whatever their
  // outcome. The old throughput_per_second() reported this number as "the"
  // throughput, which inflated Fig 5c-style results: aborted and
  // unreachable requests counted the same as delivered paths while
  // coverage() counted only completed ones. Callers now pick explicitly.
  double processed_per_second() const noexcept {
    return duration_seconds <= 0
               ? 0.0
               : static_cast<double>(completed + aborted + unreachable) /
                     duration_seconds;
  }
  // Completed reverse traceroutes per second — the paper-comparable rate
  // (Fig 5c reports delivered measurements).
  double completed_per_second() const noexcept {
    return duration_seconds <= 0
               ? 0.0
               : static_cast<double>(completed) / duration_seconds;
  }
};

// Registry handles for the operational layer: quota accounting, NDT load
// shedding, and maintenance activity.
struct ServiceMetrics {
  explicit ServiceMetrics(obs::MetricsRegistry& registry);

  // revtr_service_quota_total{event=...}: charge on accept, refund when the
  // measurement fails to deliver a path, reject when over the daily limit.
  obs::Counter* quota_charges;
  obs::Counter* quota_refunds;
  obs::Counter* quota_rejections;
  // revtr_service_probe_quota_total{event=...}: probe-budget accounting.
  // Every demanded probe is charged, then coalesced duplicates are refunded
  // (net = uniquely-issued probes); reject when a user's budget is spent.
  obs::Counter* probe_quota_charged;
  obs::Counter* probe_quota_refunded;
  obs::Counter* probe_quota_rejections;
  // revtr_service_ndt_total{outcome=...}
  obs::Counter* ndt_accepted;
  obs::Counter* ndt_shed;
  obs::Counter* request_atlas_refreshes;
  obs::Counter* daily_refreshes;
  obs::Counter* sources_bootstrapped;
};

class RevtrService {
 public:
  RevtrService(core::RevtrEngine& engine, atlas::TracerouteAtlas& atlas,
               probing::Prober& prober, const topology::Topology& topo);

  // nullptr (default) = no instrumentation; handles must outlive their use.
  void set_metrics(const ServiceMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  // --- Users (manual registration in the real system). ---
  UserId add_user(std::string name, UserLimits limits = {});
  bool known_user(UserId user) const { return users_.contains(user); }

  // --- Sources. ---
  // Bootstraps `host` as a source: verifies RR packets reach it, builds its
  // atlas from `atlas_size` probe hosts, and indexes RR aliases (Q2).
  // Returns false when the host cannot receive RR probes.
  bool add_source(topology::HostId host, std::size_t atlas_size,
                  util::Rng& rng);
  bool is_source(topology::HostId host) const {
    return sources_.contains(host);
  }
  const SourceRecord* source_record(topology::HostId host) const;

  // --- Quota surface (used directly by revtr_serverd, which runs the
  // measurement itself on its own staged workers and only needs the
  // tenant accounting). All three mirror exactly what request() does
  // around its engine call. Not thread-safe; the daemon serializes calls
  // under its own mutex. ---
  // Outcome of a try_charge_request() admission check.
  enum class QuotaDecision : std::uint8_t {
    kCharged,               // One request charged; pair with refund_request
                            // if no path is delivered.
    kUnknownUser,
    kQuotaExhausted,        // Daily request-count limit spent.
    kProbeBudgetExhausted,  // Daily probe budget spent.
  };
  // Charges one request against `user`'s daily limit (counted up front, the
  // same pre-charge request() performs).
  QuotaDecision try_charge_request(UserId user);
  // Hands back one pre-charged request that delivered no path (shed, or a
  // measurement that came back without a complete reverse route).
  void refund_request(UserId user);
  // Charges a finished measurement's probe cost (net of coalescing refunds)
  // against `user`'s daily probe budget.
  void charge_probes_for(UserId user, const core::ReverseTraceroute& result);
  // Requests currently charged against the daily limit. 0 for unknown users.
  std::size_t requests_charged_today(UserId user) const;

  // --- Measurements. ---
  // On-demand request. Fails (nullopt) on unknown user, unregistered
  // source, or exceeded daily quota.
  std::optional<core::ReverseTraceroute> request(UserId user,
                                                 topology::HostId destination,
                                                 topology::HostId source);

  // Probes charged against `user`'s daily probe budget so far, net of
  // coalescing refunds (see ProbeCharge). 0 for unknown users.
  std::uint64_t probes_charged_today(UserId user) const;

  // Full-featured request honouring RequestOptions (Appx A API).
  std::optional<ServedMeasurement> request_with_options(
      UserId user, topology::HostId destination, topology::HostId source,
      const RequestOptions& options, util::Rng& rng);

  // --- NDT-triggered measurements (Appx A). ---
  // When an NDT speed-test client connects to an M-Lab server, the service
  // opportunistically measures the reverse path from the client. Requests
  // are accepted only while the per-day NDT budget lasts (load shedding).
  struct NdtStats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_load = 0;
  };
  void set_ndt_daily_budget(std::size_t budget) { ndt_budget_ = budget; }
  std::optional<ServedMeasurement> on_ndt_measurement(
      topology::HostId client, topology::HostId server);
  const NdtStats& ndt_stats() const noexcept { return ndt_stats_; }

  // --- Archival (Appx A). Not owned; may be nullptr. Every served
  // measurement (user-driven, campaign, or NDT) is recorded. ---
  void set_archive(MeasurementArchive* archive) { archive_ = archive; }

  // --- Validation. Every served measurement is also handed to this
  // inspector before archival (paranoid mode: analysis::ResultValidator
  // re-checks the invariant catalog and counts violations). ---
  using ResultInspector = std::function<void(const core::ReverseTraceroute&)>;
  void set_inspector(ResultInspector inspector) {
    inspector_ = std::move(inspector);
  }

  // Batch campaign: measurements run on `parallelism` concurrent slots; the
  // campaign duration is the summed busy time divided by the slot count.
  CampaignStats run_campaign(
      std::span<const std::pair<topology::HostId, topology::HostId>> pairs,
      std::size_t parallelism);

  // Daily maintenance: refresh every source's atlas, rebuild RR indexes,
  // reset user quotas, drop engine caches.
  void daily_refresh(util::Rng& rng);

  util::SimClock& clock() noexcept { return clock_; }
  const util::SimClock& clock() const noexcept { return clock_; }

 private:
  struct UserState {
    std::string name;
    UserLimits limits;
    std::size_t issued_today = 0;
    std::uint64_t probes_charged_today = 0;  // Net of coalescing refunds.
  };

  // Charges `result`'s probe cost to `state` and counts the charge/refund
  // metrics. Probes were spent on the wire whether or not the measurement
  // delivered a path, so (unlike the request-count quota) there is no
  // failure refund — only coalesced duplicates are handed back.
  void charge_probes(UserState& state, const core::ReverseTraceroute& result);

  core::RevtrEngine& engine_;
  atlas::TracerouteAtlas& atlas_;
  probing::Prober& prober_;
  const topology::Topology& topo_;
  util::SimClock clock_;

  std::unordered_map<UserId, UserState> users_;
  std::unordered_map<topology::HostId, SourceRecord> sources_;
  UserId next_user_ = 1;
  void archive(const core::ReverseTraceroute& measurement) {
    if (inspector_) inspector_(measurement);
    if (archive_ != nullptr) archive_->record(measurement, clock_.now());
  }

  const ServiceMetrics* metrics_ = nullptr;
  std::size_t ndt_budget_ = 1000;
  std::size_t ndt_issued_today_ = 0;
  NdtStats ndt_stats_;
  MeasurementArchive* archive_ = nullptr;
  ResultInspector inspector_;
};

}  // namespace revtr::service
