// Address allocation for the synthetic Internet.
//
// Two regions:
//  * customer space (1.0.0.0 up):   one /20 per customer prefix; offsets
//    1-15 reserved for subnet gateway interfaces, hosts from offset 16.
//  * infrastructure space (100.0.0.0 up): one /18 per AS (growable); router
//    loopbacks from the bottom, point-to-point /30s from the top.
//
// Inter-AS /30s are allocated from *one* side's infrastructure prefix, so a
// border router can answer with an address that maps to the neighbor AS —
// the exact artifact that makes ingress discovery non-trivial (Fig 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace revtr::topology {

class AddressPlan {
 public:
  static constexpr std::uint8_t kCustomerPrefixLen = 20;
  static constexpr std::uint8_t kInfraPrefixLen = 18;
  static constexpr std::uint32_t kCustomerBase = 0x01000000;  // 1.0.0.0
  static constexpr std::uint32_t kInfraBase = 0x64000000;     // 100.0.0.0
  // Offsets 1..63 are reserved for per-router gateway interfaces; an AS has
  // at most a few dozen routers, so slots never need to be reused (reuse
  // would alias two distinct routers onto one address).
  static constexpr std::uint32_t kGatewaySlots = 64;

  // Fresh /20 for hosts. Throws std::length_error if the region is full.
  net::Ipv4Prefix allocate_customer_prefix();

  // Fresh /18 for router infrastructure.
  net::Ipv4Prefix allocate_infra_prefix();

  // Handle for suballocating inside an infra prefix.
  struct InfraCursor {
    net::Ipv4Prefix prefix;
    std::uint32_t next_loopback = 1;  // Offset of the next loopback.
    std::uint32_t p2p_blocks = 0;     // /30 blocks taken from the top.

    // nullopt when the prefix is exhausted (caller allocates a new /18).
    std::optional<net::Ipv4Addr> take_loopback();
    // Returns the base of a /30; base+1 and base+2 are the interface addrs.
    std::optional<net::Ipv4Addr> take_p2p_block();
  };

  // A deterministic RFC 1918 address derived from an id (for routers whose
  // RR policy stamps private space).
  static net::Ipv4Addr private_alias(std::uint32_t id) {
    return net::Ipv4Addr(0x0a000000u | (id & 0x00ffffffu));
  }

 private:
  std::uint32_t next_customer_block_ = 0;
  std::uint32_t next_infra_block_ = 0;
};

}  // namespace revtr::topology
