// Fig 13 + Fig 14 (Appx G.2): asymmetry vs AS-path structure.
//
//  * Fig 13: CDF of AS-path lengths for all pairs, and for symmetric vs
//    asymmetric pairs whose path traverses a tier-1. Paper: symmetric
//    paths are shorter; most 5+ AS paths are asymmetric.
//  * Fig 14: probability that each forward AS hop also appears on the
//    reverse path, by relative position, per path length. Paper: hops in
//    the middle are most often asymmetric, with a bias toward the source
//    (M-Lab) side.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "asymmetry.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 13/14: asymmetry vs AS-path structure", setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto campaign = bench::run_asymmetry_campaign(lab, setup);
  std::printf("complete bidirectional pairs: %zu\n\n",
              campaign.pairs.size());

  auto is_tier1_path = [&](const std::vector<topology::Asn>& path) {
    for (const auto asn : path) {
      if (lab.topo.has_as(asn) &&
          lab.topo.as_node(asn).tier == topology::AsTier::kTier1) {
        return true;
      }
    }
    return false;
  };

  util::Distribution len_all, len_sym_t1, len_asym_t1;
  // Fig 14: per path length (3..6 AS hops), per relative position bucket.
  constexpr std::size_t kBuckets = 10;
  struct Positional {
    std::array<util::Fraction, kBuckets> buckets;
  };
  std::map<std::size_t, Positional> by_length;

  for (const auto& pair : campaign.pairs) {
    const auto len = pair.forward_as.size();
    if (len < 2) continue;
    len_all.add(static_cast<double>(len));
    const bool symmetric = pair.forward_as == pair.reverse_as;
    if (is_tier1_path(pair.forward_as)) {
      (symmetric ? len_sym_t1 : len_asym_t1)
          .add(static_cast<double>(len));
    }
    if (len >= 3 && len <= 6) {
      const auto matches =
          eval::positional_matches(pair.forward_as, pair.reverse_as);
      auto& positional = by_length[len];
      for (std::size_t i = 0; i < matches.size(); ++i) {
        const auto bucket = std::min(
            kBuckets - 1, i * kBuckets / std::max<std::size_t>(len - 1, 1));
        positional.buckets[bucket].tally(matches[i]);
      }
    }
  }

  // --- Fig 13: CDF of AS-path lengths. ---
  auto cdf_series = [](const std::string& name,
                       const util::Distribution& dist) {
    util::Series series;
    series.name = name;
    for (const double len : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) {
      series.xs.push_back(len);
      series.ys.push_back(dist.empty() ? 0 : dist.cdf_at(len));
    }
    return series;
  };
  std::printf("%s\n",
              util::render_figure(
                  "Fig 13: CDF of AS-path length",
                  {cdf_series("symmetric paths through tier-1s", len_sym_t1),
                   cdf_series("all paths", len_all),
                   cdf_series("asymmetric paths through tier-1s",
                              len_asym_t1)},
                  3)
                  .c_str());
  if (!len_sym_t1.empty() && !len_asym_t1.empty()) {
    std::printf("median AS-path length: symmetric %.1f vs asymmetric %.1f\n\n",
                len_sym_t1.median(), len_asym_t1.median());
  }

  // --- Fig 14: positional match probability. ---
  std::vector<util::Series> positional_series;
  for (const auto& [len, positional] : by_length) {
    util::Series series;
    series.name = std::to_string(len) + " hops";
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (positional.buckets[b].total == 0) continue;
      series.xs.push_back(static_cast<double>(b) / (kBuckets - 1));
      series.ys.push_back(positional.buckets[b].value());
    }
    positional_series.push_back(std::move(series));
  }
  std::printf("%s\n",
              util::render_figure(
                  "Fig 14: P(forward AS hop also on reverse path) by "
                  "relative position (0 = source side)",
                  positional_series, 3)
                  .c_str());
  std::printf(
      "paper: symmetric paths are shorter; mid-path hops are the most\n"
      "asymmetric, biased toward the M-Lab (source) side.\n");
  return 0;
}
