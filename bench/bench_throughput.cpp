// §5.1 / §5.2.4 throughput: how many reverse traceroutes per day can each
// system configuration sustain?
//
// The deployed system is limited by two resources: the probing budget
// (each vantage point is capped at 100 packets/s, §8) and the measurement
// pipeline (each in-flight reverse traceroute occupies a slot for its
// latency, dominated by 10 s spoof batches). We model both:
//
//   probe-limited  = vps * 100 pps / (probes per reverse traceroute)
//   pipeline-limit = slots / mean latency
//   effective      = min(probe-limited, pipeline-limit)
//
// Paper: revtr 2.0 sustains 173 revtr/s (~15M/day), 43x revtr 1.0's 4/s.
#include <cstdio>

#include "ablation.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  const double pps_per_vp = flags.get_double("pps", 100.0);
  const auto slots = static_cast<double>(flags.get_int("slots", 512));
  bench::warn_unknown_flags(flags);
  bench::print_header("Throughput model: reverse traceroutes per day",
                      setup);

  auto chain = bench::table4_chain();
  const std::vector<bench::AblationConfig> configs = {chain.front(),
                                                      chain.back()};

  util::TextTable table({"System", "probes/revtr", "mean latency (s)",
                         "probe-limited (revtr/s)", "pipeline (revtr/s)",
                         "effective (revtr/s)", "per day"});
  util::Json systems = util::Json::array();
  double baseline = 0;
  double effective = 0;
  for (const auto& config : configs) {
    const auto result = bench::run_ablation(setup, config);
    const double probes_per =
        static_cast<double>(result.online.total()) /
        static_cast<double>(std::max<std::size_t>(result.attempted, 1));
    const double mean_latency = result.latency_seconds.mean();
    const double probe_limited =
        static_cast<double>(setup.topo.num_vps) * pps_per_vp / probes_per;
    const double pipeline = slots / std::max(mean_latency, 1e-9);
    effective = std::min(probe_limited, pipeline);
    if (baseline == 0) baseline = effective;
    table.add_row({config.label, util::cell(probes_per, 1),
                   util::cell(mean_latency, 1), util::cell(probe_limited, 1),
                   util::cell(pipeline, 1), util::cell(effective, 1),
                   util::cell_count(static_cast<std::uint64_t>(
                       effective * 86400.0))});
    util::Json row = util::Json::object();
    row["system"] = config.label;
    row["probes_per_revtr"] = probes_per;
    row["mean_latency_seconds"] = mean_latency;
    row["probe_limited_per_second"] = probe_limited;
    row["pipeline_per_second"] = pipeline;
    row["effective_per_second"] = effective;
    row["revtrs_per_day"] = effective * 86400.0;
    systems.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "speedup revtr 2.0 vs revtr 1.0 under this model: see the effective\n"
      "column; paper measured 4 -> 173 revtr/s (43x), from the same two\n"
      "levers (fewer probes per path, fewer 10 s spoof batches).\n");

  // Machine-readable mirror of the table for run_all.sh consumers; the top
  // level repeats the headline numbers (last config = full revtr 2.0) so
  // the check.sh schema smoke can validate them without JSON tooling.
  util::Json out = util::Json::object();
  out["systems"] = std::move(systems);
  out["effective_per_second"] = effective;
  out["revtrs_per_day"] = effective * 86400.0;
  out["speedup"] = baseline > 0 ? effective / baseline : 0.0;
  out["peak_rss_bytes"] = static_cast<double>(bench::peak_rss_bytes());
  bench::write_bench_artifact("throughput", out);
  return 0;
}
