#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/ip_options.h"
#include "net/ipv4.h"
#include "net/packet.h"
#include "net/prefix_trie.h"
#include "net/wire.h"

namespace revtr::net {
namespace {

// --------------------------------------------------------------------------
// Ipv4Addr / Ipv4Prefix
// --------------------------------------------------------------------------

TEST(Ipv4Addr, RoundTripString) {
  const Ipv4Addr addr(192, 168, 1, 42);
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
  const auto parsed = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Addr, PrivateClassification) {
  EXPECT_TRUE(Ipv4Addr(10, 1, 2, 3).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Addr(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(192, 168, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Addr(192, 169, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Addr(8, 8, 8, 8).is_private());
  EXPECT_TRUE(Ipv4Addr(127, 0, 0, 1).is_loopback());
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  const Ipv4Prefix prefix(Ipv4Addr(10, 1, 2, 200), 24);
  EXPECT_EQ(prefix.network(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(prefix.to_string(), "10.1.2.0/24");
}

TEST(Ipv4Prefix, Containment) {
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 255, 1, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Prefix(Ipv4Addr(10, 2, 0, 0), 16)));
  EXPECT_FALSE(p.contains(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 4)));
}

TEST(Ipv4Prefix, SizeAndIndexing) {
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1), Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(p.first_host(), Ipv4Addr(10, 0, 0, 1));
  const Ipv4Prefix p31(Ipv4Addr(10, 0, 0, 0), 31);
  EXPECT_EQ(p31.first_host(), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  const auto p = Ipv4Prefix::parse("203.0.113.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24);
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("banana/8"));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const Ipv4Prefix all(Ipv4Addr(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Addr(0, 0, 0, 0)));
}

// --------------------------------------------------------------------------
// PrefixTrie
// --------------------------------------------------------------------------

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 3);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 9, 9)), 2);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 9, 9, 9)), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(11, 0, 0, 1)), std::nullopt);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(PrefixTrie, LookupPrefixReturnsMatchedLength) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  const auto hit = trie.lookup_prefix(Ipv4Addr(10, 20, 30, 40));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first.length(), 8);
  EXPECT_EQ(hit->second, 1);
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 9);
}

TEST(PrefixTrie, ExactFind) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.0.0.0/8")), std::nullopt);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(1, 2, 3, 4), 32), 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 4)), 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 5)), std::nullopt);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 0), 99);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(8, 8, 8, 8)), 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 1);
}

// --------------------------------------------------------------------------
// RecordRouteOption
// --------------------------------------------------------------------------

TEST(RecordRoute, StampsUpToNine) {
  RecordRouteOption rr;
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(rr.stamp(Ipv4Addr(1, 1, 1, static_cast<std::uint8_t>(i))));
  }
  EXPECT_TRUE(rr.full());
  EXPECT_FALSE(rr.stamp(Ipv4Addr(9, 9, 9, 9)));
  EXPECT_EQ(rr.size(), 9u);
  EXPECT_EQ(rr.remaining(), 0u);
}

TEST(RecordRoute, WireRoundTrip) {
  RecordRouteOption rr;
  rr.stamp(Ipv4Addr(10, 0, 0, 1));
  rr.stamp(Ipv4Addr(10, 0, 0, 2));
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);
  ASSERT_EQ(bytes.size(), RecordRouteOption::kLength);
  EXPECT_EQ(bytes[0], 7);        // Type.
  EXPECT_EQ(bytes[1], 39);       // Length.
  EXPECT_EQ(bytes[2], 4 + 8);    // Pointer past two slots.
  const auto decoded = RecordRouteOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, rr);
}

TEST(RecordRoute, DecodeRejectsMalformed) {
  RecordRouteOption rr;
  rr.stamp(Ipv4Addr(10, 0, 0, 1));
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);

  auto truncated = bytes;
  truncated.resize(10);
  EXPECT_FALSE(RecordRouteOption::decode(truncated));

  auto bad_type = bytes;
  bad_type[0] = 68;
  EXPECT_FALSE(RecordRouteOption::decode(bad_type));

  auto bad_pointer = bytes;
  bad_pointer[2] = 5;  // Misaligned.
  EXPECT_FALSE(RecordRouteOption::decode(bad_pointer));

  auto bad_length = bytes;
  bad_length[1] = 11;
  EXPECT_FALSE(RecordRouteOption::decode(bad_length));
}

TEST(RecordRoute, FullOptionDecodes) {
  RecordRouteOption rr;
  for (int i = 1; i <= 9; ++i) {
    rr.stamp(Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);
  EXPECT_EQ(bytes[2], 40);  // Pointer past the last slot.
  const auto decoded = RecordRouteOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->full());
  EXPECT_EQ(decoded->slot(8), Ipv4Addr(10, 0, 0, 9));
}

// --------------------------------------------------------------------------
// TimestampOption
// --------------------------------------------------------------------------

TEST(Timestamp, PrespecOrderingEnforced) {
  const Ipv4Addr a(1, 1, 1, 1), b(2, 2, 2, 2);
  const Ipv4Addr prespec[] = {a, b};
  auto ts = TimestampOption::prespecified(prespec);
  ASSERT_EQ(ts.size(), 2u);
  // b cannot stamp before a.
  EXPECT_FALSE(ts.try_stamp(b, 100));
  EXPECT_TRUE(ts.try_stamp(a, 50));
  EXPECT_TRUE(ts.try_stamp(b, 100));
  EXPECT_TRUE(ts.stamped(0));
  EXPECT_TRUE(ts.stamped(1));
  EXPECT_FALSE(ts.next_pending());
}

TEST(Timestamp, CapsAtFourEntries) {
  std::vector<Ipv4Addr> many(6, Ipv4Addr(1, 2, 3, 4));
  const auto ts = TimestampOption::prespecified(many);
  EXPECT_EQ(ts.size(), TimestampOption::kMaxEntries);
}

TEST(Timestamp, WireRoundTrip) {
  const Ipv4Addr prespec[] = {Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2)};
  auto ts = TimestampOption::prespecified(prespec);
  ts.try_stamp(Ipv4Addr(1, 1, 1, 1), 12345);
  std::vector<std::uint8_t> bytes;
  ts.encode(bytes);
  EXPECT_EQ(bytes[0], 68);
  EXPECT_EQ(bytes[1], 4 + 16);
  EXPECT_EQ(bytes[3] & 0x0f, 3);  // Prespec flag.
  const auto decoded = TimestampOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->stamped(0));
  EXPECT_FALSE(decoded->stamped(1));
  EXPECT_EQ(decoded->entries()[0].timestamp, 12345u);
}

TEST(Timestamp, DecodeRejectsWrongFlag) {
  const Ipv4Addr prespec[] = {Ipv4Addr(1, 1, 1, 1)};
  auto ts = TimestampOption::prespecified(prespec);
  std::vector<std::uint8_t> bytes;
  ts.encode(bytes);
  bytes[3] = (bytes[3] & 0xf0) | 0x01;  // "timestamps only" flag.
  EXPECT_FALSE(TimestampOption::decode(bytes));
}

// --------------------------------------------------------------------------
// Checksum
// --------------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, BufferWithChecksumSumsToZero) {
  std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                    0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(sum >> 8));
  data.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_TRUE(checksum_ok(data));
}

TEST(Checksum, OddLengthPadded) {
  const std::uint8_t data[] = {0xff};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xff00));
}

// --------------------------------------------------------------------------
// Packet helpers + wire codec
// --------------------------------------------------------------------------

TEST(Packet, EchoReplyCopiesOptionsAndTargetsSource) {
  Packet request = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                     Ipv4Addr(2, 2, 2, 2), 7, 9);
  request.rr = RecordRouteOption{};
  request.rr->stamp(Ipv4Addr(3, 3, 3, 3));
  const Packet reply = make_echo_reply(request, Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(reply.type, IcmpType::kEchoReply);
  EXPECT_EQ(reply.dst, request.src);
  EXPECT_EQ(reply.src, Ipv4Addr(2, 2, 2, 2));
  ASSERT_TRUE(reply.rr);
  EXPECT_EQ(reply.rr->size(), 1u);
  EXPECT_EQ(reply.icmp_id, 7);
}

TEST(Packet, TimeExceededQuotesDestination) {
  const Packet request = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                           Ipv4Addr(2, 2, 2, 2), 7, 9, 3);
  const Packet error = make_time_exceeded(request, Ipv4Addr(5, 5, 5, 5));
  EXPECT_EQ(error.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(error.src, Ipv4Addr(5, 5, 5, 5));
  EXPECT_EQ(error.dst, request.src);
  EXPECT_EQ(error.quoted_dst, request.dst);
  EXPECT_FALSE(error.rr);
}

TEST(Packet, FlowKeyDirectionSensitive) {
  const Packet forward = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                           Ipv4Addr(2, 2, 2, 2), 7, 9);
  const Packet backward = make_echo_request(Ipv4Addr(2, 2, 2, 2),
                                            Ipv4Addr(1, 1, 1, 1), 7, 9);
  EXPECT_NE(forward.flow_key(), backward.flow_key());
}

TEST(Wire, EchoRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1, 17);
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->src, packet.src);
  EXPECT_EQ(decoded->dst, packet.dst);
  EXPECT_EQ(decoded->ttl, 17);
  EXPECT_EQ(decoded->icmp_id, 42);
  EXPECT_EQ(decoded->type, IcmpType::kEchoRequest);
  EXPECT_FALSE(decoded->rr);
}

TEST(Wire, RecordRouteRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  packet.rr = RecordRouteOption{};
  packet.rr->stamp(Ipv4Addr(9, 9, 9, 9));
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->rr);
  EXPECT_EQ(decoded->rr->size(), 1u);
  EXPECT_EQ(decoded->rr->slot(0), Ipv4Addr(9, 9, 9, 9));
  EXPECT_FALSE(decoded->ts);
}

TEST(Wire, TimestampRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  const Ipv4Addr prespec[] = {Ipv4Addr(7, 7, 7, 7)};
  packet.ts = TimestampOption::prespecified(prespec);
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->ts);
  EXPECT_EQ(decoded->ts->size(), 1u);
  EXPECT_FALSE(decoded->rr);
}

TEST(Wire, CombinedOptionsExceedHeaderBudget) {
  // RR (39 bytes) + TS cannot share the 40-byte option area; the codec
  // refuses rather than emitting an invalid IHL.
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  packet.rr = RecordRouteOption{};
  const Ipv4Addr prespec[] = {Ipv4Addr(7, 7, 7, 7)};
  packet.ts = TimestampOption::prespecified(prespec);
  EXPECT_THROW(encode_packet(packet), std::length_error);
}

TEST(Wire, TimeExceededRoundTrip) {
  Packet request = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                     Ipv4Addr(5, 6, 7, 8), 42, 3);
  const Packet error = make_time_exceeded(request, Ipv4Addr(9, 8, 7, 6));
  const auto bytes = encode_packet(error);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, IcmpType::kTimeExceeded);
  EXPECT_EQ(decoded->src, Ipv4Addr(9, 8, 7, 6));
  EXPECT_EQ(decoded->quoted_dst, Ipv4Addr(5, 6, 7, 8));
  EXPECT_EQ(decoded->icmp_id, 42);
}

TEST(Wire, CorruptionDetected) {
  const Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                          Ipv4Addr(5, 6, 7, 8), 42, 1);
  auto bytes = encode_packet(packet);
  bytes[14] ^= 0xff;  // Flip a source-address byte.
  EXPECT_FALSE(decode_packet(bytes));
}

TEST(Wire, TruncationDetected) {
  const Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                          Ipv4Addr(5, 6, 7, 8), 42, 1);
  auto bytes = encode_packet(packet);
  bytes.resize(20);
  EXPECT_FALSE(decode_packet(bytes));
}

}  // namespace
}  // namespace revtr::net
