#include "sched/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace revtr::sched {

namespace {

constexpr std::uint64_t kNoSpoof = 0xffffffffffff0001ULL;

std::uint64_t hash_addr_list(std::uint64_t seed,
                             std::span<const net::Ipv4Addr> addrs) {
  std::uint64_t h = seed;
  for (const net::Ipv4Addr addr : addrs) {
    h = util::mix_hash(h, addr.value(), 0xad5ULL);
  }
  return h;
}

}  // namespace

std::uint64_t ProbeDemand::coalesce_key() const {
  if (offline()) return 0;  // Offline jobs are never coalesced.
  std::uint64_t h = util::mix_hash(static_cast<std::uint64_t>(type), from,
                                   target.value());
  h = util::mix_hash(h, spoof_as ? spoof_as->value() : kNoSpoof, 0x5c4edULL);
  return hash_addr_list(h, prespec);
}

std::uint64_t ProbeOutcome::digest() const {
  std::uint64_t h = util::mix_hash(responded ? 1 : 0,
                                   static_cast<std::uint64_t>(duration_us),
                                   packets);
  h = hash_addr_list(h, slots);
  for (const bool stamp : stamped) h = util::mix_hash(h, stamp ? 1 : 0);
  h = util::mix_hash(h, traceroute.reached ? 1 : 0, traceroute.hops.size());
  for (const auto& hop : traceroute.hops) {
    h = util::mix_hash(h, hop.addr ? hop.addr->value() : kNoSpoof,
                       static_cast<std::uint64_t>(hop.rtt_us));
  }
  return h;
}

probing::ProbeSpec spec_of(const ProbeDemand& demand) {
  probing::ProbeSpec spec;
  spec.type = demand.type;
  spec.from = demand.from;
  spec.target = demand.target;
  spec.spoof_as = demand.spoof_as;
  spec.prespec = demand.prespec;
  return spec;
}

ProbeOutcome outcome_of(const probing::ProbeReply& reply) {
  ProbeOutcome outcome;
  outcome.responded = reply.responded;
  outcome.slots = reply.slots;
  outcome.stamped = reply.stamped;
  outcome.traceroute = reply.traceroute;
  outcome.duration_us = reply.duration_us;
  outcome.packets = reply.packets;
  return outcome;
}

ProbeOutcome execute_demand(probing::ProbeTransport& transport,
                            const ProbeDemand& demand) {
  if (demand.offline()) {
    ProbeOutcome outcome;
    outcome.offline_probes = demand.offline_work();
    return outcome;
  }
  return outcome_of(transport.execute(spec_of(demand)));
}

ProbeOutcome execute_demand(probing::Prober& prober,
                            const ProbeDemand& demand) {
  probing::LocalProbeTransport transport(prober);
  return execute_demand(transport, demand);
}

SchedMetrics::SchedMetrics(obs::MetricsRegistry& registry) {
  demanded = &registry.counter("revtr_sched_probes_demanded_total");
  issued = &registry.counter("revtr_sched_probes_issued_total");
  coalesced = &registry.counter("revtr_probes_coalesced_total");
  throttled = &registry.counter("revtr_sched_vp_throttled_total");
  spoof_batches = &registry.counter("revtr_sched_spoof_batches_total");
  queue_depth = &registry.gauge("revtr_sched_queue_depth");
}

SchedOptions ProbeScheduler::clamp_options(SchedOptions options) {
  // Liveness: a zero window or a zero refill would park queued demands
  // forever. Clamp rather than abort — callers tune these from CLI flags.
  options.vp_window = std::max<std::size_t>(options.vp_window, 1);
  // Fractional refill rates are legal (they accumulate in fixed point), but
  // zero, negative, or NaN rates would park queued demands forever.
  if (!(options.vp_tokens_per_round > 0.0)) options.vp_tokens_per_round = 1.0;
  options.vp_token_burst = std::max<std::uint32_t>(options.vp_token_burst, 1);
  options.spoof_batch_size = std::max<std::size_t>(options.spoof_batch_size, 1);
  return options;
}

namespace {

std::uint64_t scale_refill(double tokens_per_round, std::uint64_t scale) {
  // One rounding here, none per round: even 1e-9 tokens/round stays a
  // positive integer refill, so accumulation is exact and drains eventually.
  const double scaled = tokens_per_round * static_cast<double>(scale);
  if (scaled >= 0x1p63) return std::uint64_t{1} << 63;
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(scaled), 1);
}

}  // namespace

ProbeScheduler::ProbeScheduler(SchedOptions options)
    : options_(clamp_options(options)),
      refill_scaled_(scale_refill(options_.vp_tokens_per_round, kTokenScale)),
      burst_scaled_(std::max<std::uint64_t>(
          std::uint64_t{options_.vp_token_burst} * kTokenScale,
          refill_scaled_)) {}

void ProbeScheduler::set_metrics(const SchedMetrics* metrics) {
  const util::MutexLock lock(mu_);
  metrics_ = metrics;
}

void ProbeScheduler::set_audit(SchedulerAudit* audit) {
  const util::MutexLock lock(mu_);
  audit_ = audit;
}

void ProbeScheduler::submit(TaskId task, std::size_t owner,
                            std::vector<ProbeDemand> demands) {
  REVTR_CHECK(!demands.empty());
  const util::MutexLock lock(mu_);
  const std::uint64_t set_id = next_set_++;
  DemandSet& set = sets_[set_id];
  set.task = task;
  set.owner = owner;
  set.outcomes.resize(demands.size());
  set.remaining = demands.size();

  for (std::size_t slot = 0; slot < demands.size(); ++slot) {
    ProbeDemand& demand = demands[slot];
    ++stats_.demanded;
    if (metrics_ != nullptr) metrics_->demanded->add();
    const std::uint64_t key = demand.coalesce_key();
    if (options_.coalesce && !demand.offline()) {
      if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
        // Identical probe already pending: ride along, no second wire probe.
        pending_.at(it->second).waiters.push_back(Waiter{set_id, slot});
        ++stats_.coalesced;
        if (metrics_ != nullptr) metrics_->coalesced->add();
        continue;
      }
    }
    const std::uint64_t pending_id = next_pending_++;
    Pending& pending = pending_[pending_id];
    pending.demand = std::move(demand);
    pending.key = key;
    pending.waiters.push_back(Waiter{set_id, slot});
    queue_.push_back(pending_id);
    if (options_.coalesce && !pending.demand.offline()) {
      in_flight_[key] = pending_id;
    }
  }
  stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth,
                                                   queue_.size());
  if (metrics_ != nullptr) {
    metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
}

bool ProbeScheduler::issuable_locked(const Pending& pending) {
  if (pending.demand.offline()) return true;  // Not a wire probe.
  VpState& vp = vp_state_[pending.demand.from];
  if (vp.last_refill_round != round_) {
    vp.last_refill_round = round_;
    vp.issued_this_round = 0;
    vp.tokens = std::min(vp.tokens + refill_scaled_, burst_scaled_);
  }
  if (vp.issued_this_round >= options_.vp_window ||
      vp.tokens < kTokenScale) {
    return false;
  }
  ++vp.issued_this_round;
  vp.tokens -= kTokenScale;
  return true;
}

void ProbeScheduler::deliver_locked(std::uint64_t set_id, std::size_t slot,
                                    ProbeOutcome outcome) {
  DemandSet& set = sets_.at(set_id);
  set.outcomes[slot] = std::move(outcome);
  REVTR_CHECK(set.remaining > 0);
  if (--set.remaining == 0) ready_.push_back(set_id);
}

ProbeScheduler::Pending ProbeScheduler::detach_pending_locked(
    std::uint64_t pending_id) {
  Pending pending = std::move(pending_.at(pending_id));
  pending_.erase(pending_id);
  if (const auto it = in_flight_.find(pending.key);
      it != in_flight_.end() && it->second == pending_id) {
    in_flight_.erase(it);
  }
  return pending;
}

void ProbeScheduler::account_and_deliver_locked(Pending pending,
                                                ProbeOutcome outcome,
                                                PumpResult& result,
                                                std::uint64_t issue_round) {
  const std::uint64_t issue_id = next_issue_++;
  const std::uint64_t digest = outcome.digest();
  if (pending.demand.offline()) {
    ++stats_.offline_jobs;
  } else {
    ++stats_.issued;
    if (metrics_ != nullptr) metrics_->issued->add();
    ++result.issued;
    result.round_duration_us =
        std::max(result.round_duration_us, outcome.duration_us);
  }
  if (audit_ != nullptr) {
    audit_->issues.push_back(SchedulerAudit::Issue{
        issue_id, pending.key, issue_round, pending.demand.from,
        pending.demand.offline(), digest});
  }

  // First waiter is the demand that caused the wire probe; the rest are
  // coalesced riders and receive byte-identical copies marked as such.
  REVTR_CHECK(!pending.waiters.empty());
  for (std::size_t i = pending.waiters.size(); i-- > 1;) {
    const Waiter& waiter = pending.waiters[i];
    ProbeOutcome copy = outcome;
    copy.coalesced = true;
    if (audit_ != nullptr) {
      audit_->deliveries.push_back(
          SchedulerAudit::Delivery{issue_id, pending.key, copy.digest()});
    }
    deliver_locked(waiter.set, waiter.slot, std::move(copy));
  }
  deliver_locked(pending.waiters.front().set, pending.waiters.front().slot,
                 std::move(outcome));
}

void ProbeScheduler::issue_locked(probing::ProbeTransport& transport,
                                  std::uint64_t pending_id,
                                  PumpResult& result) {
  Pending pending = detach_pending_locked(pending_id);
  ProbeOutcome outcome = execute_demand(transport, pending.demand);
  account_and_deliver_locked(std::move(pending), std::move(outcome), result,
                             round_);
}

void ProbeScheduler::issue_spoof_batch_locked(
    probing::ProbeTransport& transport, std::span<const std::uint64_t> batch,
    PumpResult& result) {
  batch_pendings_.clear();
  batch_items_.clear();
  for (const std::uint64_t pending_id : batch) {
    Pending pending = detach_pending_locked(pending_id);
    batch_items_.push_back(probing::RrBatchItem{
        pending.demand.from, pending.demand.target, pending.demand.spoof_as});
    batch_pendings_.push_back(std::move(pending));
  }
  // The whole batch steps through the simulator in one pass; outcomes are
  // byte-identical to issuing each probe alone (Prober::rr_ping_batch).
  transport.execute_batch(batch_items_, batch_results_);
  for (std::size_t i = 0; i < batch_pendings_.size(); ++i) {
    probing::RrProbeResult& probe = batch_results_[i];
    ProbeOutcome outcome;
    outcome.responded = probe.responded;
    outcome.slots = std::move(probe.slots);
    outcome.duration_us = probe.duration_us;
    outcome.packets = 1;
    account_and_deliver_locked(std::move(batch_pendings_[i]),
                               std::move(outcome), result, round_);
  }
}

ProbeScheduler::PumpResult ProbeScheduler::pump(probing::Prober& prober) {
  probing::LocalProbeTransport transport(prober);
  return pump(transport);
}

ProbeScheduler::PumpResult ProbeScheduler::pump(
    probing::ProbeTransport& transport) {
  const util::MutexLock lock(mu_);
  PumpResult result;
  if (queue_.empty()) return result;
  ++round_;
  ++stats_.rounds;

  // One pass over the queue in FIFO order: offline jobs and non-spoofed
  // probes issue immediately; spoofed-RR demands gather into per-ingress
  // groups so requests sharing an ingress fill the same 3-probe batches.
  // Demands over a VP's window or bucket stay queued for the next round.
  std::deque<std::uint64_t> deferred;
  std::vector<net::Ipv4Addr> group_order;
  util::FlatMap<std::uint64_t, std::vector<std::uint64_t>> groups;
  for (const std::uint64_t pending_id : queue_) {
    const Pending& pending = pending_.at(pending_id);
    if (!issuable_locked(pending)) {
      ++stats_.throttled;
      if (metrics_ != nullptr) metrics_->throttled->add();
      deferred.push_back(pending_id);
      continue;
    }
    if (!pending.demand.offline() &&
        pending.demand.type == probing::ProbeType::kSpoofedRecordRoute) {
      const std::uint64_t group_key = pending.demand.batch_ingress.value();
      auto& group = groups[group_key];
      if (group.empty()) group_order.push_back(pending.demand.batch_ingress);
      group.push_back(pending_id);
      continue;
    }
    issue_locked(transport, pending_id, result);
  }
  for (const net::Ipv4Addr ingress : group_order) {
    const auto& group = groups.at(ingress.value());
    for (std::size_t start = 0; start < group.size();
         start += options_.spoof_batch_size) {
      ++stats_.wire_batches;
      if (metrics_ != nullptr) metrics_->spoof_batches->add();
      const std::size_t len =
          std::min(options_.spoof_batch_size, group.size() - start);
      issue_spoof_batch_locked(
          transport, std::span(group).subspan(start, len), result);
    }
  }
  queue_ = std::move(deferred);
  if (metrics_ != nullptr) {
    metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  return result;
}

ProbeScheduler::AgentId ProbeScheduler::attach_agent(std::size_t window,
                                                     std::int64_t now_us) {
  const util::MutexLock lock(mu_);
  const AgentId id = next_agent_++;
  AgentState& state = agents_[id];
  state.window = std::max<std::size_t>(window, 1);
  state.inflight = 0;
  state.last_heartbeat_us = now_us;
  return id;
}

std::size_t ProbeScheduler::requeue_agent_locked(AgentId agent) {
  // Requeue in ticket order at the head of the queue, so a dead agent's
  // probes reissue before anything newer (they have been waiting longest).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> requeue;
  for (const auto& [ticket, assigned] : assigned_) {
    if (assigned.agent == agent) {
      requeue.emplace_back(ticket, assigned.pending_id);
    }
  }
  std::sort(requeue.begin(), requeue.end());
  for (std::size_t i = requeue.size(); i-- > 0;) {
    assigned_.erase(requeue[i].first);
    queue_.push_front(requeue[i].second);
  }
  stats_.reassigned += requeue.size();
  return requeue.size();
}

std::size_t ProbeScheduler::detach_agent(AgentId agent) {
  const util::MutexLock lock(mu_);
  if (agents_.find(agent) == agents_.end()) return 0;
  agents_.erase(agent);
  return requeue_agent_locked(agent);
}

void ProbeScheduler::agent_heartbeat(AgentId agent, std::int64_t now_us) {
  const util::MutexLock lock(mu_);
  if (const auto it = agents_.find(agent); it != agents_.end()) {
    it->second.last_heartbeat_us =
        std::max(it->second.last_heartbeat_us, now_us);
  }
}

std::vector<ProbeScheduler::AgentId> ProbeScheduler::expire_agents(
    std::int64_t now_us, std::int64_t timeout_us) {
  const util::MutexLock lock(mu_);
  std::vector<AgentId> expired;
  for (const auto& [id, state] : agents_) {
    if (now_us - state.last_heartbeat_us > timeout_us) expired.push_back(id);
  }
  for (const AgentId id : expired) {
    agents_.erase(id);
    requeue_agent_locked(id);
    ++stats_.agents_expired;
  }
  return expired;
}

std::vector<ProbeScheduler::Assignment> ProbeScheduler::next_assignments(
    AgentId agent) {
  const util::MutexLock lock(mu_);
  std::vector<Assignment> out;
  const auto agent_it = agents_.find(agent);
  if (agent_it == agents_.end() || queue_.empty()) return out;
  AgentState& state = agent_it->second;
  if (state.inflight >= state.window) return out;
  ++round_;
  ++stats_.rounds;

  // One FIFO pass with the same eligibility rules as a local pump round
  // (each dispatch call IS a round — the audit records it, so I7's
  // per-round VP window check is exactly as strict as in the monolith).
  // Offline jobs never cross the wire (run_offline_jobs steals them) and
  // the agent-window check comes first so a full agent costs no VP tokens.
  std::deque<std::uint64_t> deferred;
  for (const std::uint64_t pending_id : queue_) {
    const Pending& pending = pending_.at(pending_id);
    if (pending.demand.offline() || state.inflight >= state.window) {
      deferred.push_back(pending_id);
      continue;
    }
    if (!issuable_locked(pending)) {
      ++stats_.throttled;
      if (metrics_ != nullptr) metrics_->throttled->add();
      deferred.push_back(pending_id);
      continue;
    }
    const std::uint64_t ticket = next_ticket_++;
    assigned_[ticket] = Assigned{pending_id, agent, round_};
    ++state.inflight;
    out.push_back(Assignment{ticket, spec_of(pending.demand)});
  }
  queue_ = std::move(deferred);
  if (metrics_ != nullptr) {
    metrics_->queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  return out;
}

bool ProbeScheduler::deliver_assignment(AgentId agent, std::uint64_t ticket,
                                        const probing::ProbeReply& reply) {
  const util::MutexLock lock(mu_);
  const auto it = assigned_.find(ticket);
  if (it == assigned_.end() || it->second.agent != agent) {
    // Requeued off a detached agent (or already delivered): dropping the
    // late duplicate is what keeps fan-out and quota single-charged.
    ++stats_.stale_results;
    return false;
  }
  const Assigned assigned = it->second;
  assigned_.erase(ticket);
  if (const auto agent_it = agents_.find(agent); agent_it != agents_.end()) {
    REVTR_CHECK(agent_it->second.inflight > 0);
    --agent_it->second.inflight;
  }
  Pending pending = detach_pending_locked(assigned.pending_id);
  PumpResult ignored;
  account_and_deliver_locked(std::move(pending), outcome_of(reply), ignored,
                             assigned.round);
  return true;
}

std::size_t ProbeScheduler::run_offline_jobs(std::size_t max_jobs) {
  const util::MutexLock lock(mu_);
  std::size_t run = 0;
  std::deque<std::uint64_t> keep;
  while (!queue_.empty()) {
    const std::uint64_t pending_id = queue_.front();
    queue_.pop_front();
    if (run < max_jobs && pending_.at(pending_id).demand.offline()) {
      Pending pending = detach_pending_locked(pending_id);
      ProbeOutcome outcome;
      outcome.offline_probes = pending.demand.offline_work();
      PumpResult ignored;
      account_and_deliver_locked(std::move(pending), std::move(outcome),
                                 ignored, round_);
      ++run;
    } else {
      keep.push_back(pending_id);
    }
  }
  queue_ = std::move(keep);
  return run;
}

std::size_t ProbeScheduler::assigned_in_flight() const {
  const util::MutexLock lock(mu_);
  return assigned_.size();
}

std::vector<ProbeScheduler::Ready> ProbeScheduler::collect_ready(
    std::size_t owner) {
  const util::MutexLock lock(mu_);
  std::vector<Ready> out;
  std::deque<std::uint64_t> keep;
  for (const std::uint64_t set_id : ready_) {
    DemandSet& set = sets_.at(set_id);
    if (set.owner != owner) {
      keep.push_back(set_id);
      continue;
    }
    out.push_back(Ready{set.task, std::move(set.outcomes)});
    sets_.erase(set_id);
  }
  ready_ = std::move(keep);
  return out;
}

bool ProbeScheduler::idle() const {
  const util::MutexLock lock(mu_);
  return pending_.empty() && ready_.empty() && sets_.empty();
}

std::size_t ProbeScheduler::backlog() const {
  const util::MutexLock lock(mu_);
  return sets_.size();
}

SchedulerStats ProbeScheduler::stats() const {
  const util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace revtr::sched
