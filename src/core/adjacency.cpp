#include "core/adjacency.h"

#include <algorithm>

namespace revtr::core {

void AdjacencyMap::add_pair(net::Ipv4Addr a, net::Ipv4Addr b) {
  if (a == b) return;
  auto& na = neighbors_[a];
  if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
  auto& nb = neighbors_[b];
  if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
}

void AdjacencyMap::add_path(std::span<const net::Ipv4Addr> hops) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    add_pair(hops[i], hops[i + 1]);
  }
}

std::vector<net::Ipv4Addr> AdjacencyMap::adjacent_to(
    net::Ipv4Addr addr, std::size_t limit) const {
  const auto it = neighbors_.find(addr);
  if (it == neighbors_.end()) return {};
  auto result = it->second;
  if (result.size() > limit) result.resize(limit);
  return result;
}

AdjacencyProvider AdjacencyMap::provider(std::size_t limit) const {
  return [this, limit](net::Ipv4Addr addr) {
    return adjacent_to(addr, limit);
  };
}

}  // namespace revtr::core
