#include "eval/metrics.h"

#include <algorithm>

namespace revtr::eval {

HopMatcher::HopMatcher(const alias::AliasStore* aliases,
                       const alias::SnmpResolver* snmp, Options options)
    : aliases_(aliases), snmp_(snmp), options_(options) {}

bool HopMatcher::resolvable(net::Ipv4Addr a, net::Ipv4Addr b) const {
  if (a == b) return true;
  if (options_.use_p2p_heuristic && alias::same_p2p_subnet(a, b)) return true;
  if (aliases_ != nullptr && aliases_->knows(a) && aliases_->knows(b)) {
    return true;
  }
  if (snmp_ != nullptr && snmp_->responsive(a) && snmp_->responsive(b)) {
    return true;
  }
  return false;
}

bool HopMatcher::same_router(net::Ipv4Addr a, net::Ipv4Addr b) const {
  if (a == b) return true;
  // Traceroute reveals ingress addresses, RR reveals egress ones; opposite
  // ends of a /30 are the same link, hence adjacent-or-same device — the
  // Appx B.1 point-to-point rule.
  if (options_.use_p2p_heuristic && alias::same_p2p_subnet(a, b)) return true;
  if (aliases_ != nullptr && aliases_->same_router(a, b)) return true;
  if (snmp_ != nullptr) {
    const auto ia = snmp_->identifier(a);
    const auto ib = snmp_->identifier(b);
    if (ia && ib && *ia == *ib) return true;
  }
  if (options_.optimistic && !resolvable(a, b)) return true;
  return false;
}

bool HopMatcher::hop_in_path(net::Ipv4Addr hop,
                             std::span<const net::Ipv4Addr> path) const {
  for (const auto other : path) {
    if (same_router(hop, other)) return true;
  }
  return false;
}

double fraction_hops_matched(std::span<const net::Ipv4Addr> reference,
                             std::span<const net::Ipv4Addr> candidate,
                             const HopMatcher& matcher) {
  if (reference.empty()) return 0.0;
  std::size_t matched = 0;
  for (const auto hop : reference) {
    if (matcher.hop_in_path(hop, candidate)) ++matched;
  }
  return static_cast<double>(matched) /
         static_cast<double>(reference.size());
}

AsMatch compare_as_paths(std::span<const topology::Asn> direct,
                         std::span<const topology::Asn> reverse) {
  if (direct.size() == reverse.size() &&
      std::equal(direct.begin(), direct.end(), reverse.begin())) {
    return AsMatch::kExact;
  }
  // Subsequence test: every reverse AS appears in the direct path, in
  // order. Then the reverse path is merely missing hops (§5.2.2: "cases
  // when the reverse traceroute is incomplete ... rather than wrong").
  std::size_t d = 0;
  bool subsequence = true;
  for (const auto asn : reverse) {
    while (d < direct.size() && direct[d] != asn) ++d;
    if (d == direct.size()) {
      subsequence = false;
      break;
    }
    ++d;
  }
  return subsequence ? AsMatch::kMissingHops : AsMatch::kMismatch;
}

SymmetryResult path_symmetry(std::span<const net::Ipv4Addr> forward,
                             std::span<const net::Ipv4Addr> reverse,
                             const HopMatcher& matcher,
                             const asmap::IpToAs& ip2as) {
  SymmetryResult result;
  result.router_fraction = fraction_hops_matched(forward, reverse, matcher);

  const auto forward_as = ip2as.as_path(forward);
  auto reverse_as = ip2as.as_path(reverse);
  std::reverse(reverse_as.begin(), reverse_as.end());

  if (forward_as.empty()) return result;
  std::size_t matched = 0;
  for (const auto asn : forward_as) {
    if (std::find(reverse_as.begin(), reverse_as.end(), asn) !=
        reverse_as.end()) {
      ++matched;
    }
  }
  result.as_fraction =
      static_cast<double>(matched) / static_cast<double>(forward_as.size());
  result.as_symmetric = forward_as == reverse_as;
  return result;
}

std::size_t as_path_edit_distance(std::span<const topology::Asn> forward,
                                  std::span<const topology::Asn> reverse) {
  const std::size_t n = forward.size();
  const std::size_t m = reverse.size();
  std::vector<std::size_t> previous(m + 1), current(m + 1);
  for (std::size_t j = 0; j <= m; ++j) previous[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    current[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t substitution =
          previous[j - 1] + (forward[i - 1] == reverse[j - 1] ? 0 : 1);
      current[j] = std::min({previous[j] + 1, current[j - 1] + 1,
                             substitution});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

std::vector<bool> positional_matches(std::span<const topology::Asn> forward,
                                     std::span<const topology::Asn> reverse) {
  std::vector<bool> matches;
  matches.reserve(forward.size());
  for (const auto asn : forward) {
    matches.push_back(std::find(reverse.begin(), reverse.end(), asn) !=
                      reverse.end());
  }
  return matches;
}

}  // namespace revtr::eval
