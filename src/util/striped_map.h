// Lock-striped hash map for read-mostly shared caches.
//
// The engine's RR and traceroute caches are shared by every worker of a
// parallel campaign (service/parallel.h): all workers benefit from any
// worker's probes, Doubletree-style. A single mutex would serialize the hot
// lookup path, so the map is sharded into independently locked stripes, each
// guarded by a util::SharedMutex — lookups take a shared (reader) lock on
// one stripe only and run concurrently; insertions take that stripe's
// exclusive lock.
//
// lookup() returns a *copy* of the value. Returning references would make
// the caller hold data that a concurrent insert_or_assign on the same key
// could destroy after the lock is released; cache entries are small vectors,
// so the copy is cheap relative to the probing it saves.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "util/annotate.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace revtr::util {

template <typename Value, std::size_t Stripes = 16>
class StripedMap {
  static_assert(Stripes > 0 && (Stripes & (Stripes - 1)) == 0,
                "stripe count must be a power of two");

 public:
  std::optional<Value> lookup(std::uint64_t key) const {
    const Stripe& s = stripe(key);
    const SharedLock lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  void insert_or_assign(std::uint64_t key, Value value) {
    Stripe& s = stripe(key);
    const ExclusiveLock lock(s.mu);
    s.map.insert_or_assign(key, std::move(value));
  }

  bool contains(std::uint64_t key) const {
    const Stripe& s = stripe(key);
    const SharedLock lock(s.mu);
    return s.map.contains(key);
  }

  void clear() {
    for (Stripe& s : stripes_) {
      const ExclusiveLock lock(s.mu);
      s.map.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& s : stripes_) {
      const SharedLock lock(s.mu);
      total += s.map.size();
    }
    return total;
  }

 private:
  struct Stripe {
    mutable SharedMutex mu;
    // Keys arrive pre-mixed by stripe() and FlatMap re-mixes internally, so
    // the flat table keeps its probe sequences short even for clustered ids.
    FlatMap<std::uint64_t, Value> map REVTR_GUARDED_BY(mu);
  };

  // Keys are typically already hashes, but re-mixing is cheap insurance
  // against callers whose keys cluster in the low bits.
  Stripe& stripe(std::uint64_t key) noexcept {
    return stripes_[splitmix64(key) & (Stripes - 1)];
  }
  const Stripe& stripe(std::uint64_t key) const noexcept {
    return stripes_[splitmix64(key) & (Stripes - 1)];
  }

  std::array<Stripe, Stripes> stripes_;
};

}  // namespace revtr::util
