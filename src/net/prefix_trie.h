// Longest-prefix-match binary trie over IPv4 prefixes.
//
// Used for BGP prefix resolution (mapping a probe target to its routed
// prefix), IP-to-AS mapping (Appx B.2), and the forwarding lookups in the
// simulator. A compressed path would be faster, but a plain binary trie at
// <= 33 levels is simple, cache-friendly enough at our scales, and easy to
// reason about; bench_micro_net measures it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "util/check.h"

namespace revtr::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  // Insert or overwrite the value for an exact prefix.
  void insert(Ipv4Prefix prefix, Value value) {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) {
        child = util::checked_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});  // May reallocate; re-index afterwards.
        nodes_[node].child[bit] = child;
      }
      node = child;
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  // Longest-prefix match: the value of the most specific prefix containing
  // the address, or nullopt when nothing matches.
  std::optional<Value> lookup(Ipv4Addr addr) const {
    std::optional<Value> best;
    std::uint32_t node = 0;
    const std::uint32_t bits = addr.value();
    if (nodes_[0].value) best = nodes_[0].value;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
      if (nodes_[node].value) best = nodes_[node].value;
    }
    return best;
  }

  // Longest matching prefix itself together with its value.
  std::optional<std::pair<Ipv4Prefix, Value>> lookup_prefix(
      Ipv4Addr addr) const {
    std::optional<std::pair<Ipv4Prefix, Value>> best;
    std::uint32_t node = 0;
    const std::uint32_t bits = addr.value();
    if (nodes_[0].value) {
      best = {Ipv4Prefix(addr, 0), *nodes_[0].value};
    }
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
      if (nodes_[node].value) {
        best = {Ipv4Prefix(addr, util::checked_cast<std::uint8_t>(depth + 1)),
                *nodes_[node].value};
      }
    }
    return best;
  }

  // Exact-prefix fetch (no LPM).
  std::optional<Value> find(Ipv4Prefix prefix) const {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  struct Node {
    std::uint32_t child[2] = {0, 0};
    std::optional<Value> value;
  };

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace revtr::net
