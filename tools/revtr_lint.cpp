// revtr-lint: repo-specific invariants that -Wall/-Wextra cannot express.
//
// Runs as a normal build target and as a ctest entry (`revtr_lint <repo
// root>`), so `ctest` alone enforces the rules. The checks are lexical: each
// file is stripped of comments and string/char literals first, so rule text
// inside documentation or log messages never trips a rule. A line can opt
// out of one rule with a trailing comment `lint:allow(<rule>)` — the marker
// is searched on the *raw* line, keeping suppressions greppable.
//
// Rules (see README.md "Correctness tooling" for how to add one):
//   raw-new-delete   Raw `new`/`delete` anywhere; owners use RAII
//                    (std::unique_ptr, containers). `= delete` is fine.
//   narrowing-cast   `static_cast` to a narrow integer type inside src/net/,
//                    the wire trust boundary; use util::checked_cast (abort
//                    on loss) or util::truncate_cast (intentional wrap).
//   header-hygiene   Every header under src/ carries `#pragma once` and
//                    lives in the `revtr` namespace.
//   std-endl         `std::endl` in src/ or bench/ (hot paths): it forces a
//                    flush per line; use '\n'.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;  // 0 = whole-file finding.
  std::string rule;
  std::string message;
};

bool has_extension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

bool is_source(const fs::path& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".h");
}

// Removes comments and the contents of string/char literals while keeping
// line structure, so later regex passes see only code. This is a lexer-level
// approximation (no raw strings in this codebase), which is exactly the
// fidelity a lexical linter wants: cheap and predictable.
std::string strip_comments_and_literals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);  // Unterminated; keep line numbers aligned.
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool allows(const std::string& raw_line, std::string_view rule) {
  const std::string marker = "lint:allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(path, 0, "io", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string code = strip_comments_and_literals(raw);
    const auto raw_lines = split_lines(raw);
    const auto code_lines = split_lines(code);

    const std::string rel = relative_path(path);
    const bool in_net = rel.rfind("src/net/", 0) == 0;
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool in_hot = in_src || rel.rfind("bench/", 0) == 0;

    if (in_src && has_extension(path, ".h")) check_header(path, code);

    // clang-format off
    static const std::regex kRawNew(
        R"((^|[^\w.>])new\s+[\w:<(])");
    static const std::regex kRawDelete(
        R"((^|[^\w])delete(\s*\[\s*\])?\s+[\w:*(])");
    static const std::regex kNarrowingCast(
        R"(static_cast<\s*(std::)?(u?int(8|16|32)_t|(un)?signed\s+char|char|short|(un)?signed\s+short)\s*>)");
    static const std::regex kStdEndl(R"(std\s*::\s*endl)");
    // clang-format on

    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& line = code_lines[i];
      const std::string& raw_line = i < raw_lines.size() ? raw_lines[i] : line;
      const std::size_t lineno = i + 1;

      if (std::regex_search(line, kRawNew) && !allows(raw_line, "raw-new-delete")) {
        report(path, lineno, "raw-new-delete",
               "raw new; use std::make_unique or a container");
      }
      if (std::regex_search(line, kRawDelete) &&
          !allows(raw_line, "raw-new-delete")) {
        report(path, lineno, "raw-new-delete",
               "raw delete; owners must use RAII");
      }
      if (in_net && std::regex_search(line, kNarrowingCast) &&
          !allows(raw_line, "narrowing-cast")) {
        report(path, lineno, "narrowing-cast",
               "unchecked narrowing static_cast in src/net/; use "
               "util::checked_cast or util::truncate_cast");
      }
      if (in_hot && std::regex_search(line, kStdEndl) &&
          !allows(raw_line, "std-endl")) {
        report(path, lineno, "std-endl",
               "std::endl flushes per line; use '\\n'");
      }
    }
  }

  int finish() const {
    if (violations_.empty()) {
      std::printf("revtr-lint: ok (%zu files)\n", files_checked_);
      return 0;
    }
    for (const auto& v : violations_) {
      if (v.line == 0) {
        std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                     v.message.c_str());
      } else {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
      }
    }
    std::fprintf(stderr, "revtr-lint: %zu violation(s) in %zu files\n",
                 violations_.size(), files_checked_);
    return 1;
  }

  void note_file() { ++files_checked_; }

 private:
  void check_header(const fs::path& path, const std::string& code) {
    if (code.find("#pragma once") == std::string::npos) {
      report(path, 0, "header-hygiene", "missing #pragma once");
    }
    static const std::regex kRevtrNamespace(R"(namespace\s+revtr\b)");
    if (!std::regex_search(code, kRevtrNamespace)) {
      report(path, 0, "header-hygiene",
             "public header must declare the revtr namespace");
    }
  }

  std::string relative_path(const fs::path& path) const {
    return fs::relative(path, root_).generic_string();
  }

  void report(const fs::path& path, std::size_t line, std::string rule,
              std::string message) {
    violations_.push_back(Violation{relative_path(path), line, std::move(rule),
                                    std::move(message)});
  }

  fs::path root_;
  std::vector<Violation> violations_;
  std::size_t files_checked_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: revtr_lint <repo-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "revtr_lint: not a directory: %s\n", argv[1]);
    return 2;
  }

  Linter linter(root);
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !is_source(entry.path())) continue;
      linter.note_file();
      linter.lint_file(entry.path());
    }
  }
  return linter.finish();
}
