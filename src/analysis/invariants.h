// Machine-readable invariant catalog for reverse traceroute results.
//
// The catalog states, as executable checks, the correctness claims the paper
// makes about every returned measurement (see DESIGN.md "Invariant
// catalog"):
//   I1 kLoopFree / kTerminates — returned paths are loop-free, start at the
//      destination, and (when complete) terminate at the source (§2).
//   I2 kProvenance — every ReverseHop's HopSource is justified by a probe or
//      atlas entry that actually occurred in the trace (Insight 1.10).
//   I3 kBudget — probe counts charged to the request exactly match the
//      probes the prober emitted in the request's window, online and
//      offline separately (Table 4 accounting).
//   I4 kInterdomainSymmetry — configs with Q5 enabled (revtr 2.0) never
//      emit kAssumedSymmetric across an interdomain link; they abort (§4.4).
//   I5 kOracle — reported by analysis/oracle.h: accepted hops diverge from
//      the simulator's ground-truth reverse route only in the error modes
//      the paper permits.
//   I6 kTraceAttribution — when a request was traced (src/obs/trace.h), the
//      online probes attributed across its spans sum exactly to the
//      request's online ProbeCounters delta: the trace neither invents nor
//      loses probe cost (DESIGN.md §9). Overflowed traces are skipped.
//   I7 kSchedulerConsistency — over a sched::SchedulerAudit: every coalesced
//      delivery references a wire probe that was actually issued, with the
//      same coalesce key and a byte-identical outcome digest (a waiter never
//      receives a different answer than it would have measured itself), and
//      no vantage point exceeds its per-round issue window (DESIGN.md §10).
//
// tools/revtr_mc runs this catalog over an exhaustive (topology × preset ×
// fault schedule) grid; tests/analysis_test.cpp runs it on single cases.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "asmap/asmap.h"
#include "core/revtr.h"
#include "obs/trace.h"
#include "probing/prober.h"
#include "sched/scheduler.h"
#include "topology/topology.h"

namespace revtr::analysis {

enum class InvariantId : std::uint8_t {
  kLoopFree,
  kTerminates,
  kProvenance,
  kBudget,
  kInterdomainSymmetry,
  kOracle,
  kTraceAttribution,
  kSchedulerConsistency,
};
inline constexpr std::size_t kNumInvariants = 8;

std::string to_string(InvariantId id);

struct Violation {
  InvariantId id = InvariantId::kLoopFree;
  std::string detail;
};

struct CheckContext {
  const topology::Topology* topo = nullptr;
  const asmap::IpToAs* ip2as = nullptr;
  const core::EngineConfig* config = nullptr;
  // Probes emitted during this request (ProbeLog::since(mark)).
  std::span<const probing::ProbeEvent> window;
  // Engine-lifetime probes, for justifying cache replays and atlas suffixes
  // measured before the request started.
  std::span<const probing::ProbeEvent> lifetime;
  // I3 needs `window` to hold exactly this request's probes. Callers that
  // cannot window precisely (e.g. the service validator, where atlas
  // refreshes and bundled forward traceroutes interleave) disable it and
  // leave budget checking to the exhaustive tools/revtr_mc sweep.
  bool check_budget = true;
  // Trace recorded for this request, if any; enables I6. Must be the trace
  // the engine held during measure() of exactly this result.
  const obs::Trace* trace = nullptr;
};

// Runs invariants I1–I4 against one result. Empty return = all hold.
std::vector<Violation> check_result(const core::ReverseTraceroute& result,
                                    const CheckContext& ctx);

// Runs I7 against one scheduler run's audit trail. `options` must be the
// SchedOptions the audited scheduler ran with (the window bound is checked
// against options.vp_window). Empty return = the audit is consistent.
std::vector<Violation> check_scheduler(const sched::SchedulerAudit& audit,
                                       const sched::SchedOptions& options);

}  // namespace revtr::analysis
