// Table 2: how often the penultimate traceroute hop is also on the reverse
// path, split by intradomain vs interdomain last link (§4.4).
//
// Methodology (mirroring the paper):
//  * Targets: the /30 partners of SNMPv3-responsive router addresses, so
//    that "not on the reverse path" can be established reliably.
//  * For each target, traceroute from a random source to get the
//    penultimate hop, then reveal true reverse hops with spoofed RR pings.
//  * Classify the penultimate hop as on-path (alias match), off-path (SNMP
//    identifier differs from every reverse hop's), or unknown.
//
// Paper result: intradomain 0.90 yes/(yes+no), interdomain 0.57.
#include <cstdio>

#include "alias/alias.h"
#include "bench_common.h"
#include "eval/metrics.h"

using namespace revtr;

namespace {

struct Tally {
  std::uint64_t yes = 0, no = 0, unknown = 0;

  double conditional() const {
    return yes + no == 0 ? 0.0
                         : static_cast<double>(yes) /
                               static_cast<double>(yes + no);
  }
  double frac(std::uint64_t part, std::uint64_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(part) / static_cast<double>(total);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  const auto max_targets =
      static_cast<std::size_t>(flags.get_int("targets", 500));
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 2: penultimate-hop symmetry by link type",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const alias::SnmpResolver snmp(lab.topo);
  util::Rng rng(setup.seed * 77 + 1);

  // Build the target list: /30 partners of SNMP-responsive addresses that
  // are themselves probe-able router interfaces.
  std::vector<net::Ipv4Addr> targets;
  for (const auto addr : snmp.responsive_addresses()) {
    const auto partner = alias::p2p_partner(addr);
    if (lab.topo.interface_at(partner)) targets.push_back(partner);
  }
  rng.shuffle(targets);
  if (targets.size() > max_targets) targets.resize(max_targets);
  std::printf("targets: %zu (/30 partners of SNMPv3 responders)\n\n",
              targets.size());

  const auto vps = lab.topo.vantage_points();
  const std::vector<topology::HostId> vp_pool(vps.begin(), vps.end());
  // Appx B.1 alias basis: MIDAR-like dataset + SNMPv3 + /30 heuristic.
  util::Rng alias_rng(setup.seed + 3);
  const auto midar = alias::midar_like_aliases(lab.topo, alias_rng);
  const eval::HopMatcher matcher(&midar, &snmp);

  Tally intra, inter;
  std::size_t evaluated = 0;
  for (const auto target : targets) {
    const topology::HostId source = rng.pick(vp_pool);
    const auto trace =
        lab.prober.traceroute(source, target);
    if (!trace.reached || trace.hops.size() < 2) continue;
    std::optional<net::Ipv4Addr> penultimate;
    for (std::size_t i = trace.hops.size() - 1; i-- > 0;) {
      if (trace.hops[i].addr) {
        penultimate = trace.hops[i].addr;
        break;
      }
    }
    if (!penultimate) continue;

    // Reveal reverse hops with spoofed RR from up to 6 random VPs.
    std::vector<net::Ipv4Addr> reverse_hops;
    const auto sample = rng.sample(vp_pool, 6);
    for (const auto vp : sample) {
      const auto probe = lab.prober.rr_ping(vp, target,
                                            lab.topo.host(source).addr);
      if (!probe.responded) continue;
      reverse_hops =
          core::RevtrEngine::extract_reverse_hops(probe.slots, target);
      if (!reverse_hops.empty()) break;
    }
    if (reverse_hops.empty()) continue;
    ++evaluated;

    // Classify: on path / off path / unknown.
    bool on_path = false;
    for (const auto hop : reverse_hops) {
      if (matcher.same_router(*penultimate, hop) ||
          alias::same_p2p_subnet(*penultimate, hop)) {
        on_path = true;
        break;
      }
    }
    const bool snmp_known = snmp.responsive(*penultimate);

    const auto as_p = lab.ip2as.lookup(*penultimate);
    const auto as_t = lab.ip2as.lookup(target);
    const bool intradomain = as_p && as_t && *as_p == *as_t;
    Tally& tally = intradomain ? intra : inter;
    if (on_path) {
      ++tally.yes;
    } else if (snmp_known) {
      ++tally.no;
    } else {
      ++tally.unknown;
    }
  }

  std::printf("paths with a measured reverse hop: %zu\n\n", evaluated);

  util::TextTable table({"", "Yes", "No", "Unknown", "Yes/(Yes+No)"});
  auto row = [&](const char* label, const Tally& t) {
    const std::uint64_t total = t.yes + t.no + t.unknown;
    table.add_row({label, util::cell(t.frac(t.yes, total)),
                   util::cell(t.frac(t.no, total)),
                   util::cell(t.frac(t.unknown, total)),
                   util::cell(t.conditional())});
  };
  Tally all;
  all.yes = intra.yes + inter.yes;
  all.no = intra.no + inter.no;
  all.unknown = intra.unknown + inter.unknown;
  row("Intradomain", intra);
  row("Interdomain", inter);
  row("All", all);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: intradomain 0.90, interdomain 0.57 — the gap justifies Q5's\n"
      "intradomain-only symmetry assumption.\n");
  return 0;
}
