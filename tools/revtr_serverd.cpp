// revtr_serverd — the long-running measurement daemon (src/server/).
//
//   revtr_serverd [--socket=PATH] [--workers=N] [--ases=N --vps=N --probes=N
//                  --seed=N] [--sources=N] [--atlas=N] [--name=S --key=S]
//                  [--daily-limit=N] [--probe-budget=N] [--rate=R --burst=B]
//                  [--queue-cap=N] [--backlog-limit=N] [--max-inflight=N]
//                  [--weight=W] [--remote-probing] [--agent-timeout-ms=N]
//
// Builds the simulated Internet once, binds the AF_UNIX socket, and serves
// framed requests (server/frame.h) until SIGTERM/SIGINT, which drain
// gracefully: every accepted request finishes before exit.
//
// --remote-probing runs the daemon as a distributed controller (DESIGN.md
// §15): probes are dispatched to revtr_agentd processes that register over
// the same socket, and nothing executes until at least one agent joins.
#include <cstdio>
#include <string>

#include "server/daemon.h"
#include "util/flags.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  server::ServerOptions options;
  options.socket_path =
      flags.get_string("socket", "/tmp/revtr_serverd.sock");
  options.topo.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  options.topo.num_ases =
      static_cast<std::size_t>(flags.get_int("ases", 400));
  options.topo.num_vps = static_cast<std::size_t>(flags.get_int("vps", 20));
  options.topo.num_probe_hosts =
      static_cast<std::size_t>(flags.get_int("probes", 150));
  options.seed = options.topo.seed;
  options.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  options.sources = static_cast<std::size_t>(flags.get_int("sources", 1));
  options.atlas_size = static_cast<std::size_t>(flags.get_int("atlas", 50));
  options.max_inflight_per_worker =
      static_cast<std::size_t>(flags.get_int("max-inflight", 16));

  options.remote_probing = flags.get_bool("remote-probing", false);
  options.agent_timeout_us =
      static_cast<std::int64_t>(flags.get_int("agent-timeout-ms", 2000)) *
      1000;

  options.admission.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 1024));
  options.admission.sched_backlog_limit =
      static_cast<std::size_t>(flags.get_int("backlog-limit", 4096));
  options.admission.workers = options.workers;

  server::TenantConfig tenant;
  tenant.name = flags.get_string("name", "demo");
  tenant.api_key = flags.get_string("key", "demo-key");
  tenant.limits.daily_limit =
      static_cast<std::size_t>(flags.get_int("daily-limit", 10'000'000));
  tenant.limits.daily_probe_budget = static_cast<std::uint64_t>(
      flags.get_int("probe-budget", 1'000'000'000));
  tenant.bucket.rate_per_sec = flags.get_double("rate", 100000.0);
  tenant.bucket.burst = flags.get_double("burst", 10000.0);
  tenant.weight = flags.get_double("weight", 1.0);
  options.tenants.push_back(tenant);

  server::ServerDaemon daemon(options);
  if (!daemon.start()) {
    std::fprintf(stderr, "revtr_serverd: start failed\n");
    return 1;
  }
  server::ServerDaemon::install_signal_handlers(&daemon);
  std::printf("revtr_serverd: listening on %s (%zu workers, tenant %s%s)\n",
              options.socket_path.c_str(), options.workers,
              tenant.name.c_str(),
              options.remote_probing ? ", remote probing" : "");
  std::fflush(stdout);

  daemon.wait_until_drained();
  const auto counters = daemon.counters();
  daemon.stop();
  server::ServerDaemon::install_signal_handlers(nullptr);
  std::printf("revtr_serverd: drained; %llu accepted, %llu rejected, "
              "%llu completed, %llu shed, %llu deadline-missed\n",
              static_cast<unsigned long long>(counters.accepted),
              static_cast<unsigned long long>(counters.rejected),
              static_cast<unsigned long long>(counters.completed),
              static_cast<unsigned long long>(counters.shed_queued),
              static_cast<unsigned long long>(counters.deadline_missed));
  return 0;
}
