#include <gtest/gtest.h>
#include <memory>

#include <algorithm>

#include "core/revtr.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace revtr::core {
namespace {

using net::Ipv4Addr;
using topology::HostId;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 81;
  config.num_ases = 200;
  config.num_vps = 12;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 60;
  return config;
}

// --------------------------------------------------------------------------
// extract_reverse_hops
// --------------------------------------------------------------------------

TEST(ExtractReverseHops, AfterExactStamp) {
  const Ipv4Addr current(5, 5, 5, 5);
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1), current,
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(3, 0, 0, 1)};
  const auto hops = RevtrEngine::extract_reverse_hops(slots, current);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], Ipv4Addr(2, 0, 0, 1));
}

TEST(ExtractReverseHops, LastOccurrenceWins) {
  const Ipv4Addr current(5, 5, 5, 5);
  const std::vector<Ipv4Addr> slots = {current, Ipv4Addr(1, 0, 0, 1), current,
                                       Ipv4Addr(2, 0, 0, 1)};
  const auto hops = RevtrEngine::extract_reverse_hops(slots, current);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], Ipv4Addr(2, 0, 0, 1));
}

TEST(ExtractReverseHops, DoubleStampFallback) {
  const Ipv4Addr current(5, 5, 5, 5);
  const Ipv4Addr alias(6, 6, 6, 6);
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1), alias, alias,
                                       Ipv4Addr(2, 0, 0, 1)};
  const auto hops = RevtrEngine::extract_reverse_hops(slots, current);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], Ipv4Addr(2, 0, 0, 1));
}

TEST(ExtractReverseHops, LoopFallback) {
  const Ipv4Addr current(5, 5, 5, 5);
  const Ipv4Addr a(1, 0, 0, 1);
  const std::vector<Ipv4Addr> slots = {a, Ipv4Addr(2, 0, 0, 1), a,
                                       Ipv4Addr(3, 0, 0, 1)};
  const auto hops = RevtrEngine::extract_reverse_hops(slots, current);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], Ipv4Addr(3, 0, 0, 1));
}

TEST(ExtractReverseHops, NothingWithoutDelimiter) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1)};
  EXPECT_TRUE(
      RevtrEngine::extract_reverse_hops(slots, Ipv4Addr(9, 9, 9, 9)).empty());
}

// --------------------------------------------------------------------------
// Engine end-to-end on the simulated Internet
// --------------------------------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = std::make_unique<eval::Lab>(small_config(), EngineConfig::revtr2());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 50);
  }
  static void TearDownTestSuite() {
    lab_.reset();
  }
  static std::unique_ptr<eval::Lab> lab_;
  static HostId source_;
};

std::unique_ptr<eval::Lab> EngineFixture::lab_;
HostId EngineFixture::source_ = topology::kInvalidId;

TEST_F(EngineFixture, MeasuresCompletePathsEndingAtSource) {
  const auto dests = lab_->responsive_destinations(/*require_rr=*/true);
  ASSERT_GT(dests.size(), 20u);
  util::SimClock clock;
  std::size_t complete = 0, attempted = 0;
  for (std::size_t i = 0; i < dests.size() && attempted < 25; i += 7) {
    ++attempted;
    const auto result = lab_->engine.measure(dests[i], source_, clock);
    EXPECT_EQ(result.destination, dests[i]);
    EXPECT_FALSE(result.hops.empty());
    EXPECT_EQ(result.hops.front().addr, lab_->topo.host(dests[i]).addr);
    EXPECT_EQ(result.hops.front().source, HopSource::kDestination);
    if (result.complete()) {
      ++complete;
      // A complete path ends at the source (or its last atlas hop).
      const auto ips = result.ip_hops();
      ASSERT_GE(ips.size(), 2u);
    }
  }
  EXPECT_GT(complete, attempted / 2) << "revtr 2.0 should complete most";
}

TEST_F(EngineFixture, LatencyAndProbesAccounted) {
  const auto dests = lab_->responsive_destinations(true);
  util::SimClock clock;
  const auto before = clock.now();
  const auto result = lab_->engine.measure(dests[1], source_, clock);
  EXPECT_EQ(result.span.begin, before);
  EXPECT_EQ(result.span.end, clock.now());
  EXPECT_GE(result.span.duration(), 0);
  EXPECT_GT(result.probes.total(), 0u);
}

TEST_F(EngineFixture, CacheCutsProbesOnRepeat) {
  EngineConfig config = EngineConfig::revtr2();
  eval::Lab lab(small_config(), config);
  const HostId source = lab.topo.vantage_points()[1];
  lab.bootstrap_source(source, 40);
  const auto dests = lab.responsive_destinations(true);
  util::SimClock clock;
  const auto first = lab.engine.measure(dests[3], source, clock);
  const auto second = lab.engine.measure(dests[3], source, clock);
  EXPECT_EQ(first.complete(), second.complete());
  EXPECT_LE(second.probes.total(), first.probes.total());
}

TEST_F(EngineFixture, HopProvenanceIsPlausible) {
  const auto dests = lab_->responsive_destinations(true);
  util::SimClock clock;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto result = lab_->engine.measure(dests[i * 3 + 1], source_,
                                             clock);
    if (!result.complete()) continue;
    bool after_atlas = false;
    for (std::size_t h = 0; h < result.hops.size(); ++h) {
      const auto& hop = result.hops[h];
      if (h == 0) {
        EXPECT_EQ(hop.source, HopSource::kDestination);
        continue;
      }
      // Once the path intersects the atlas, everything after comes from
      // the atlas too (plus inserted "*" flags).
      if (after_atlas) {
        EXPECT_TRUE(hop.source == HopSource::kAtlasIntersection ||
                    hop.source == HopSource::kSuspiciousGap);
      }
      if (hop.source == HopSource::kAtlasIntersection) after_atlas = true;
    }
  }
}

TEST_F(EngineFixture, Revtr2NeverAssumesInterdomainSymmetry) {
  const auto dests = lab_->responsive_destinations(false);
  util::SimClock clock;
  for (std::size_t i = 0; i < dests.size() && i < 60; i += 3) {
    const auto result = lab_->engine.measure(dests[i], source_, clock);
    EXPECT_FALSE(result.used_interdomain_symmetry);
  }
}

TEST_F(EngineFixture, Revtr1CompletesMoreButUsesInterdomainGuesses) {
  eval::Lab lab1(small_config(), EngineConfig::revtr1());
  eval::Lab lab2(small_config(), EngineConfig::revtr2());
  const HostId source1 = lab1.topo.vantage_points()[0];
  const HostId source2 = lab2.topo.vantage_points()[0];
  lab1.bootstrap_source(source1, 40);
  lab2.bootstrap_source(source2, 40);
  // revtr 1.0 intersected via alias datasets (§5.2.1), not the Q2 RR index.
  util::Rng alias_rng(3);
  const auto midar = alias::midar_like_aliases(lab1.topo, alias_rng);
  lab1.engine.set_alias_store(&midar);
  const auto dests = lab1.responsive_destinations(false);

  util::SimClock clock1, clock2;
  std::size_t complete1 = 0, complete2 = 0, interdomain1 = 0;
  for (std::size_t i = 0; i < dests.size() && i < 120; ++i) {
    const auto r1 = lab1.engine.measure(dests[i], source1, clock1);
    const auto r2 = lab2.engine.measure(dests[i], source2, clock2);
    complete1 += r1.complete();
    complete2 += r2.complete();
    interdomain1 += r1.used_interdomain_symmetry;
  }
  EXPECT_GE(complete1, complete2);
  EXPECT_GT(complete2, 0u);
  EXPECT_GT(interdomain1, 0u)
      << "revtr 1.0 should have fallen back to interdomain symmetry";
}

TEST_F(EngineFixture, TimestampWithOracleAdjacenciesExtends) {
  eval::Lab lab(small_config(), [] {
    EngineConfig config = EngineConfig::revtr2();
    config.use_timestamp = true;
    return config;
  }());
  const HostId source = lab.topo.vantage_points()[2];
  lab.bootstrap_source(source, 40);
  // Oracle: ground-truth adjacencies from topology links.
  lab.engine.set_adjacency_provider([&](Ipv4Addr current) {
    std::vector<Ipv4Addr> result;
    const auto owner = lab.topo.interface_at(current);
    if (!owner) return result;
    for (const auto link : lab.topo.router(owner->router).links) {
      result.push_back(
          lab.topo.egress_addr(lab.topo.far_end(owner->router, link), link));
    }
    return result;
  });
  const auto dests = lab.responsive_destinations(true);
  util::SimClock clock;
  std::size_t ts_counted = 0;
  for (std::size_t i = 0; i < dests.size() && i < 30; ++i) {
    const auto result = lab.engine.measure(dests[i], source, clock);
    ts_counted += result.probes.ts + result.probes.spoofed_ts;
  }
  EXPECT_GT(ts_counted, 0u) << "TS technique never exercised";
}

TEST_F(EngineFixture, DeterministicAcrossRuns) {
  auto run = [&]() {
    eval::Lab lab(small_config(), EngineConfig::revtr2());
    const HostId source = lab.topo.vantage_points()[0];
    lab.bootstrap_source(source, 40);
    const auto dests = lab.responsive_destinations(true);
    util::SimClock clock;
    std::vector<std::string> summary;
    for (std::size_t i = 0; i < 10; ++i) {
      const auto result = lab.engine.measure(dests[i], source, clock);
      std::string line = to_string(result.status);
      for (const auto& hop : result.hops) {
        line += " " + hop.addr.to_string();
      }
      summary.push_back(line);
    }
    return summary;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(EngineFixture, AccuracyAgainstDirectTraceroute) {
  // The headline property: complete revtr 2.0 paths agree with a direct
  // traceroute at the AS level for the vast majority of measured pairs.
  const auto probe_hosts = lab_->topo.probe_hosts();
  util::SimClock clock;
  std::size_t exact_or_missing = 0, complete = 0;
  for (std::size_t i = 0; i < probe_hosts.size() && complete < 20; ++i) {
    const HostId dest = probe_hosts[i];
    const auto result = lab_->engine.measure(dest, source_, clock);
    if (!result.complete()) continue;
    ++complete;
    const auto direct = lab_->prober.traceroute(
        dest, lab_->topo.host(source_).addr);
    const auto direct_as = lab_->ip2as.as_path(direct.responsive_hops());
    const auto revtr_as = lab_->ip2as.as_path(result.ip_hops());
    const auto match = eval::compare_as_paths(direct_as, revtr_as);
    if (match != eval::AsMatch::kMismatch) ++exact_or_missing;
  }
  ASSERT_GT(complete, 5u);
  EXPECT_GT(static_cast<double>(exact_or_missing) /
                static_cast<double>(complete),
            0.75);
}

TEST_F(EngineFixture, AtlasCheckedBeforeRecordRoute) {
  // Fig 2 control flow: if the destination itself sits on an atlas
  // traceroute, the measurement completes with no online RR probing at all.
  const auto& traceroutes = lab_->atlas.traceroutes(source_);
  for (const auto& tr : traceroutes) {
    const auto dest = lab_->topo.host_at(
        lab_->topo.host(tr.probe).addr);
    if (!dest) continue;
    util::SimClock clock;
    lab_->engine.clear_caches();
    const auto result = lab_->engine.measure(tr.probe, source_, clock);
    if (!result.complete()) continue;
    // When every hop came from the direct RR ping and the atlas (no
    // spoofed-rr / timestamp / symmetry provenance), no spoofed batch may
    // have been charged — the cheap techniques run first.
    bool cheap_only = true;
    for (std::size_t h = 1; h < result.hops.size(); ++h) {
      cheap_only &=
          result.hops[h].source == core::HopSource::kAtlasIntersection ||
          result.hops[h].source == core::HopSource::kRecordRoute ||
          result.hops[h].source == core::HopSource::kSuspiciousGap;
    }
    if (cheap_only) {
      EXPECT_EQ(result.spoofed_batches, 0u);
      EXPECT_EQ(result.probes.spoofed_rr, 0u);
      return;
    }
  }
  GTEST_SKIP() << "no destination resolved from direct RR + atlas alone";
}

TEST_F(EngineFixture, CacheExpiresAfterTtl) {
  EngineConfig config = EngineConfig::revtr2();
  eval::Lab lab(small_config(), config);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 40);
  const auto dests = lab.responsive_destinations(true);
  util::SimClock clock;
  const auto first = lab.engine.measure(dests[5], source, clock);
  // Within the TTL the repeat is cheaper; after the TTL it pays full price
  // again.
  const auto cached = lab.engine.measure(dests[5], source, clock);
  clock.advance(2 * util::SimClock::kDay);
  const auto expired = lab.engine.measure(dests[5], source, clock);
  EXPECT_LE(cached.probes.total(), first.probes.total());
  EXPECT_GE(expired.probes.total(), cached.probes.total());
}

// --------------------------------------------------------------------------
// AdjacencyMap
// --------------------------------------------------------------------------

TEST(AdjacencyMap, RecordsUndirectedPairs) {
  AdjacencyMap map;
  const std::vector<Ipv4Addr> path = {Ipv4Addr(1, 0, 0, 1),
                                      Ipv4Addr(2, 0, 0, 1),
                                      Ipv4Addr(3, 0, 0, 1)};
  map.add_path(path);
  const auto n2 = map.adjacent_to(Ipv4Addr(2, 0, 0, 1));
  EXPECT_EQ(n2.size(), 2u);
  const auto n1 = map.adjacent_to(Ipv4Addr(1, 0, 0, 1));
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], Ipv4Addr(2, 0, 0, 1));
  EXPECT_TRUE(map.adjacent_to(Ipv4Addr(9, 9, 9, 9)).empty());
}

TEST(AdjacencyMap, DeduplicatesAndCaps) {
  AdjacencyMap map;
  for (int i = 0; i < 30; ++i) {
    map.add_pair(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, static_cast<std::uint8_t>(i)));
    map.add_pair(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 5));  // Duplicate.
  }
  EXPECT_EQ(map.adjacent_to(Ipv4Addr(1, 0, 0, 1), 10).size(), 10u);
  EXPECT_EQ(map.adjacent_to(Ipv4Addr(1, 0, 0, 1), 100).size(), 30u);
  const auto provider = map.provider(4);
  EXPECT_EQ(provider(Ipv4Addr(1, 0, 0, 1)).size(), 4u);
}

}  // namespace
}  // namespace revtr::core
