#include "net/wire.h"

#include <stdexcept>

#include "net/checksum.h"

namespace revtr::net {

namespace {

constexpr std::uint8_t kProtocolIcmp = 1;
constexpr std::uint8_t kIcmpEchoReply = 0;
constexpr std::uint8_t kIcmpDestUnreachable = 3;
constexpr std::uint8_t kIcmpEchoRequest = 8;
constexpr std::uint8_t kIcmpTimeExceeded = 11;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((std::uint16_t{b[at]} << 8) | b[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint32_t{b[at]} << 24) | (std::uint32_t{b[at + 1]} << 16) |
         (std::uint32_t{b[at + 2]} << 8) | std::uint32_t{b[at + 3]};
}

std::uint8_t icmp_type_code(IcmpType type) {
  switch (type) {
    case IcmpType::kEchoRequest:
      return kIcmpEchoRequest;
    case IcmpType::kEchoReply:
      return kIcmpEchoReply;
    case IcmpType::kTimeExceeded:
      return kIcmpTimeExceeded;
    case IcmpType::kDestUnreachable:
      return kIcmpDestUnreachable;
  }
  return kIcmpEchoRequest;
}

std::optional<IcmpType> icmp_type_from_code(std::uint8_t code) {
  switch (code) {
    case kIcmpEchoRequest:
      return IcmpType::kEchoRequest;
    case kIcmpEchoReply:
      return IcmpType::kEchoReply;
    case kIcmpTimeExceeded:
      return IcmpType::kTimeExceeded;
    case kIcmpDestUnreachable:
      return IcmpType::kDestUnreachable;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_packet(const Packet& packet) {
  // --- Options area, padded to a 4-byte boundary with EOL (0). ---
  std::vector<std::uint8_t> options;
  if (packet.rr) packet.rr->encode(options);
  if (packet.ts) packet.ts->encode(options);
  while (options.size() % 4 != 0) options.push_back(0);
  if (options.size() > 40) {
    // IPv4 caps the header at 60 bytes (IHL 15): a full Record Route and a
    // Timestamp option cannot share one packet, which is one reason the
    // real system issues them separately.
    throw std::length_error("IP options exceed the 40-byte header budget");
  }

  const std::size_t header_len = 20 + options.size();
  const std::uint8_t ihl = static_cast<std::uint8_t>(header_len / 4);

  // --- ICMP message. ---
  std::vector<std::uint8_t> icmp;
  icmp.push_back(icmp_type_code(packet.type));
  icmp.push_back(0);  // code
  put_u16(icmp, 0);   // checksum placeholder
  if (packet.type == IcmpType::kEchoRequest ||
      packet.type == IcmpType::kEchoReply) {
    put_u16(icmp, packet.icmp_id);
    put_u16(icmp, packet.icmp_seq);
  } else {
    put_u32(icmp, 0);  // unused
    // Quoted original IPv4 header (20 bytes, no options) + 8 ICMP bytes.
    icmp.push_back(0x45);
    icmp.push_back(0);
    put_u16(icmp, 28);
    put_u16(icmp, 0);
    put_u16(icmp, 0);
    icmp.push_back(1);  // quoted TTL (expired)
    icmp.push_back(kProtocolIcmp);
    put_u16(icmp, 0);
    put_u32(icmp, packet.dst.value());         // quoted src = original sender
    put_u32(icmp, packet.quoted_dst.value());  // quoted dst
    icmp.push_back(kIcmpEchoRequest);
    icmp.push_back(0);
    put_u16(icmp, 0);
    put_u16(icmp, packet.icmp_id);
    put_u16(icmp, packet.icmp_seq);
  }
  const std::uint16_t icmp_sum = internet_checksum(icmp);
  icmp[2] = static_cast<std::uint8_t>(icmp_sum >> 8);
  icmp[3] = static_cast<std::uint8_t>(icmp_sum);

  // --- IPv4 header. ---
  std::vector<std::uint8_t> out;
  out.reserve(header_len + icmp.size());
  out.push_back(static_cast<std::uint8_t>(0x40 | ihl));
  out.push_back(0);  // TOS
  put_u16(out, static_cast<std::uint16_t>(header_len + icmp.size()));
  put_u16(out, 0);  // identification
  put_u16(out, 0);  // flags/fragment offset
  out.push_back(packet.ttl);
  out.push_back(kProtocolIcmp);
  put_u16(out, 0);  // header checksum placeholder
  put_u32(out, packet.src.value());
  put_u32(out, packet.dst.value());
  out.insert(out.end(), options.begin(), options.end());

  const std::uint16_t header_sum =
      internet_checksum({out.data(), header_len});
  out[10] = static_cast<std::uint8_t>(header_sum >> 8);
  out[11] = static_cast<std::uint8_t>(header_sum);

  out.insert(out.end(), icmp.begin(), icmp.end());
  return out;
}

std::optional<Packet> decode_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 28) return std::nullopt;  // 20 IP + 8 ICMP minimum.
  if ((bytes[0] >> 4) != 4) return std::nullopt;
  const std::size_t header_len = static_cast<std::size_t>(bytes[0] & 0x0f) * 4;
  if (header_len < 20 || bytes.size() < header_len + 8) return std::nullopt;
  if (!checksum_ok(bytes.subspan(0, header_len))) return std::nullopt;
  if (bytes[9] != kProtocolIcmp) return std::nullopt;

  Packet packet;
  packet.ttl = bytes[8];
  packet.src = Ipv4Addr(get_u32(bytes, 12));
  packet.dst = Ipv4Addr(get_u32(bytes, 16));

  // --- Options. ---
  std::size_t at = 20;
  while (at < header_len) {
    const std::uint8_t kind = bytes[at];
    if (kind == 0) break;  // EOL
    if (kind == 1) {       // NOP
      ++at;
      continue;
    }
    if (at + 1 >= header_len) return std::nullopt;
    const std::uint8_t opt_len = bytes[at + 1];
    if (opt_len < 2 || at + opt_len > header_len) return std::nullopt;
    const auto opt = bytes.subspan(at, opt_len);
    if (kind == RecordRouteOption::kType) {
      auto rr = RecordRouteOption::decode(opt);
      if (!rr) return std::nullopt;
      packet.rr = *rr;
    } else if (kind == TimestampOption::kType) {
      auto ts = TimestampOption::decode(opt);
      if (!ts) return std::nullopt;
      packet.ts = *ts;
    }
    at += opt_len;
  }

  // --- ICMP. ---
  const auto icmp = bytes.subspan(header_len);
  if (!checksum_ok(icmp)) return std::nullopt;
  const auto type = icmp_type_from_code(icmp[0]);
  if (!type) return std::nullopt;
  packet.type = *type;
  if (*type == IcmpType::kEchoRequest || *type == IcmpType::kEchoReply) {
    packet.icmp_id = get_u16(icmp, 4);
    packet.icmp_seq = get_u16(icmp, 6);
  } else {
    if (icmp.size() < 8 + 28) return std::nullopt;
    packet.quoted_dst = Ipv4Addr(get_u32(icmp, 8 + 16));
    packet.icmp_id = get_u16(icmp, 8 + 24);
    packet.icmp_seq = get_u16(icmp, 8 + 26);
  }
  return packet;
}

}  // namespace revtr::net
