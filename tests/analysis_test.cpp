#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/invariants.h"
#include "analysis/model_checker.h"
#include "analysis/oracle.h"
#include "analysis/probe_log.h"
#include "eval/harness.h"

namespace revtr::analysis {
namespace {

using topology::HostId;

// The model checker's own smallest shape doubles as the unit-test topology:
// a short line of single-router ASes where direct RR reaches everything.
topology::TopologyConfig line_config(std::uint64_t seed = 3) {
  topology::TopologyConfig config = default_shapes()[0].config;
  config.seed = seed;
  return config;
}

bool has_violation(const std::vector<Violation>& violations, InvariantId id) {
  return std::any_of(
      violations.begin(), violations.end(),
      [id](const Violation& violation) { return violation.id == id; });
}

// Harness around eval::Lab with the probe log attached from birth, so every
// probe — bootstrap included — is in the lifetime log, mirroring how the
// model checker and the service validator observe the prober.
struct LoggedLab {
  explicit LoggedLab(const topology::TopologyConfig& config,
                     core::EngineConfig engine_config =
                         core::EngineConfig::revtr2())
      : lab(config, engine_config) {
    lab.prober.set_observer(&log);
  }

  core::ReverseTraceroute measure(HostId destination, HostId source) {
    mark = log.mark();
    return lab.engine.measure(destination, source, clock);
  }

  CheckContext context() const {
    CheckContext ctx;
    ctx.topo = &lab.topo;
    ctx.ip2as = &lab.ip2as;
    ctx.config = &lab.engine.config();
    ctx.window = log.since(mark);
    ctx.lifetime = log.lifetime();
    return ctx;
  }

  eval::Lab lab;
  ProbeLog log;
  util::SimClock clock;
  std::size_t mark = 0;
};

TEST(ProbeLog, TallySeparatesOnlineAndOffline) {
  LoggedLab t{line_config()};
  const HostId vp = t.lab.topo.vantage_points()[0];
  const auto target = t.lab.topo.host(t.lab.topo.probe_hosts()[0]).addr;

  t.lab.prober.rr_ping(vp, target);
  {
    const probing::Prober::OfflineScope offline(t.lab.prober);
    t.lab.prober.rr_ping(vp, target);
    t.lab.prober.rr_ping(vp, target);
  }

  const auto online = ProbeLog::tally(t.log.lifetime(), /*offline=*/false);
  const auto offline = ProbeLog::tally(t.log.lifetime(), /*offline=*/true);
  EXPECT_EQ(online.rr, 1u);
  EXPECT_EQ(offline.rr, 2u);
  EXPECT_EQ(t.log.events().size(), 3u);
}

TEST(Invariants, GoodMeasurementSatisfiesCatalogAndOracle) {
  LoggedLab t{line_config()};
  const HostId source = t.lab.topo.vantage_points()[0];
  t.lab.bootstrap_source(source, 3);
  const auto destinations = t.lab.responsive_destinations();
  ASSERT_FALSE(destinations.empty());

  const auto result = t.measure(destinations[0], source);
  const auto violations = check_result(result, t.context());
  for (const auto& violation : violations) {
    ADD_FAILURE() << to_string(violation.id) << ": " << violation.detail;
  }

  const auto oracle = check_against_truth(result, t.lab.network);
  for (const auto& violation : oracle.violations) {
    ADD_FAILURE() << to_string(violation.id) << ": " << violation.detail;
  }
  if (result.complete()) {
    EXPECT_GT(oracle.pairs_checked, 0u);
  }
}

TEST(Invariants, FabricatedResultsViolateCatalog) {
  LoggedLab t{line_config()};
  const HostId source = t.lab.topo.vantage_points()[0];
  t.lab.bootstrap_source(source, 3);
  const auto destinations = t.lab.responsive_destinations();
  ASSERT_FALSE(destinations.empty());
  const auto good = t.measure(destinations[0], source);
  const auto ctx = t.context();
  ASSERT_TRUE(check_result(good, ctx).empty());
  ASSERT_GE(good.hops.size(), 1u);

  {  // A repeated concrete hop breaks loop freedom.
    auto bad = good;
    bad.hops.push_back(bad.hops.front());
    EXPECT_TRUE(has_violation(check_result(bad, ctx), InvariantId::kLoopFree));
  }
  {  // The path must start at the destination.
    auto bad = good;
    bad.hops.set_source(0, core::HopSource::kRecordRoute);
    EXPECT_TRUE(
        has_violation(check_result(bad, ctx), InvariantId::kTerminates));
  }
  {  // A hop no probe ever revealed has no provenance.
    auto bad = good;
    bad.hops.push_back(core::ReverseHop{*net::Ipv4Addr::parse("203.0.113.199"),
                                        core::HopSource::kRecordRoute});
    EXPECT_TRUE(
        has_violation(check_result(bad, ctx), InvariantId::kProvenance));
  }
  {  // Charged probes must match the probes actually emitted.
    auto bad = good;
    bad.probes.rr += 5;
    EXPECT_TRUE(has_violation(check_result(bad, ctx), InvariantId::kBudget));
  }
  {  // The interdomain-symmetry flag must reflect the path.
    auto bad = good;
    bad.used_interdomain_symmetry = !bad.used_interdomain_symmetry;
    EXPECT_TRUE(has_violation(check_result(bad, ctx),
                              InvariantId::kInterdomainSymmetry));
  }
}

// Regression (found by revtr_mc): the RR cache replayed every cached
// segment as kSpoofedRecordRoute, even when the hops came from a *direct*
// RR ping. The cached measurement then carried provenance no spoofed probe
// could justify. The cache now stores the original HopSource.
TEST(Invariants, CachedReplayKeepsRrProvenance) {
  LoggedLab t{line_config()};
  const HostId source = t.lab.topo.vantage_points()[0];
  t.lab.bootstrap_source(source, 3);
  const auto destinations = t.lab.responsive_destinations();
  ASSERT_FALSE(destinations.empty());

  const auto first = t.measure(destinations[0], source);
  ASSERT_TRUE(check_result(first, t.context()).empty());
  const bool first_used_direct_rr = std::any_of(
      first.hops.begin(), first.hops.end(), [](const core::ReverseHop& hop) {
        return hop.source == core::HopSource::kRecordRoute;
      });

  const auto second = t.measure(destinations[0], source);
  const auto violations = check_result(second, t.context());
  for (const auto& violation : violations) {
    ADD_FAILURE() << to_string(violation.id) << ": " << violation.detail;
  }
  // The replay reproduces the same path with the same provenance.
  ASSERT_EQ(second.hops.size(), first.hops.size());
  for (std::size_t i = 0; i < first.hops.size(); ++i) {
    EXPECT_EQ(second.hops[i].addr, first.hops[i].addr) << "hop " << i;
    EXPECT_EQ(second.hops[i].source, first.hops[i].source) << "hop " << i;
  }
  // The interesting case is a direct-RR segment surviving the round trip;
  // on this line topology direct RR always reaches.
  EXPECT_TRUE(first_used_direct_rr);
}

// Regression (found by revtr_mc): traceroutes that never reached the source
// were still indexed for intersection, so adopting their suffix produced
// "complete" paths that stop short of the source.
TEST(Invariants, AtlasNeverIntersectsUnreachedTraceroutes) {
  // A larger shape and several seeds make a partially-responsive (truncated)
  // traceroute near-certain; the check must not be vacuous.
  bool saw_unreached_with_hops = false;
  for (std::uint64_t seed = 11; seed < 19; ++seed) {
    topology::TopologyConfig config = default_shapes()[5].config;  // sparse6
    config.seed = seed;
    // The Lab seed also drives the network's loss draws; varying it keeps
    // the iterations statistically independent.
    eval::Lab lab(config, core::EngineConfig::revtr2(), seed);
    lab.network.set_loss_rate(0.75);
    const HostId source = lab.topo.vantage_points()[0];
    lab.atlas.build(source, 3, lab.rng);

    for (const auto& tr : lab.atlas.traceroutes(source)) {
      if (!tr.reached_source && !tr.hops.empty()) {
        saw_unreached_with_hops = true;
      }
      for (const auto& addr : tr.hops) {
        const auto hit =
            lab.atlas.intersect(source, addr, /*use_rr_index=*/true);
        if (!hit) continue;
        EXPECT_TRUE(lab.atlas.traceroutes(source)[hit->traceroute_index]
                        .reached_source)
            << "intersection at " << addr.to_string()
            << " resolves to a traceroute that never reached the source";
      }
    }
    if (saw_unreached_with_hops) break;
  }
  EXPECT_TRUE(saw_unreached_with_hops);
}

// Regression (found by revtr_mc): RR slots aligning past the traceroute
// tail were clamped onto the final hop, registering the source's own
// aliases with an *empty* suffix — the engine then declared paths complete
// at an RR alias that is not the source.
TEST(Invariants, RrAliasSuffixesTerminateAtSource) {
  eval::Lab lab(line_config(5));
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 3);
  const auto source_router = lab.topo.host(source).attachment;

  ASSERT_GT(lab.atlas.rr_index_size(source), 0u);
  for (const auto& [addr, at] : lab.atlas.rr_index_entries(source)) {
    const auto suffix = lab.atlas.suffix_after(source, at);
    ASSERT_FALSE(suffix.empty())
        << "rr_index entry " << addr.to_string() << " has an empty suffix";
    const auto last = suffix.back();
    const auto host = lab.topo.host_at(last);
    const auto iface = lab.topo.interface_at(last);
    const bool at_source =
        (host.has_value() && *host == source) ||
        (iface.has_value() && iface->router == source_router);
    EXPECT_TRUE(at_source) << "suffix for " << addr.to_string()
                           << " ends at " << last.to_string()
                           << ", not at the source";
  }
}

// Regression (found by revtr_mc): probes for on-demand ingress discovery
// (and atlas builds) were charged to the request's online budget. They are
// maintenance traffic (Table 4) and now land in offline_probes.
TEST(Invariants, MaintenanceProbesAreChargedOffline) {
  LoggedLab t{line_config()};
  const HostId source = t.lab.topo.vantage_points()[0];

  const auto before = t.lab.prober.offline_counters();
  t.lab.bootstrap_source(source, 3);
  const auto delta = t.lab.prober.offline_counters() - before;
  // Atlas build sends traceroutes; the Q2 index sends RR pings. All offline.
  EXPECT_GT(delta.traceroutes, 0u);
  EXPECT_GT(delta.rr, 0u);
  EXPECT_EQ(ProbeLog::tally(t.log.lifetime(), /*offline=*/true).rr, delta.rr);
  EXPECT_EQ(ProbeLog::tally(t.log.lifetime(), /*offline=*/false).total(), 0u);

  // A measurement's own online budget excludes any offline maintenance it
  // triggers, and the prober's grand total partitions exactly.
  const auto destinations = t.lab.responsive_destinations();
  ASSERT_FALSE(destinations.empty());
  const auto counters_before = t.lab.prober.counters();
  const auto offline_before = t.lab.prober.offline_counters();
  const auto result = t.measure(destinations[0], source);
  const auto total_delta = t.lab.prober.counters() - counters_before;
  const auto offline_delta = t.lab.prober.offline_counters() - offline_before;
  EXPECT_EQ(result.probes.total() + result.offline_probes.total(),
            total_delta.total());
  EXPECT_EQ(result.offline_probes.total(), offline_delta.total());
}

TEST(ModelChecker, SmokeRunIsCleanAndCounts) {
  CheckerOptions options;
  options.max_states = 60;
  options.seeds_per_shape = 1;
  const auto summary = run_model_checker(options);
  EXPECT_EQ(summary.states, 60u);
  EXPECT_TRUE(summary.ok())
      << summary.total_violations << " violations, first: "
      << (summary.samples.empty() ? "none" : summary.samples.front());
  EXPECT_EQ(summary.completed + summary.aborted + summary.unreachable,
            summary.states);
}

TEST(ModelChecker, GridCoversAllInvariantDimensions) {
  // The default grid must be big enough to count as exhaustive (the
  // acceptance bar is >= 10,000 states) and must cross every preset with
  // every fault schedule.
  const auto shapes = default_shapes();
  const auto presets = default_presets();
  const auto schedules = default_fault_schedules();
  const CheckerOptions options;
  EXPECT_GE(shapes.size() * options.seeds_per_shape * presets.size() *
                schedules.size(),
            10000u);
  EXPECT_TRUE(std::any_of(
      presets.begin(), presets.end(), [](const PresetSpec& preset) {
        return preset.config.allow_interdomain_symmetry;
      }));
  EXPECT_TRUE(std::any_of(
      presets.begin(), presets.end(), [](const PresetSpec& preset) {
        return !preset.config.use_cache;
      }));
  EXPECT_TRUE(std::any_of(schedules.begin(), schedules.end(),
                          [](const FaultSchedule& schedule) {
                            return schedule.drop_spoofed;
                          }));
  EXPECT_TRUE(std::any_of(schedules.begin(), schedules.end(),
                          [](const FaultSchedule& schedule) {
                            return schedule.stale_atlas;
                          }));
  EXPECT_TRUE(std::any_of(schedules.begin(), schedules.end(),
                          [](const FaultSchedule& schedule) {
                            return schedule.rr_rate_limit > 0;
                          }));
  EXPECT_TRUE(std::any_of(schedules.begin(), schedules.end(),
                          [](const FaultSchedule& schedule) {
                            return schedule.filtered_vp_stride > 0;
                          }));
}

}  // namespace
}  // namespace revtr::analysis
