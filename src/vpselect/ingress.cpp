#include "vpselect/ingress.h"

#include <algorithm>
#include <map>

namespace revtr::vpselect {

namespace {
using net::Ipv4Addr;
using topology::HostId;
using topology::PrefixId;
}  // namespace

ReachAnalysis analyze_reach(std::span<const Ipv4Addr> slots,
                            const net::Ipv4Prefix& prefix,
                            bool enable_double_stamp, bool enable_loop) {
  ReachAnalysis analysis;

  // Direct: first slot inside the destination prefix.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (prefix.contains(slots[i])) {
      analysis.reach_slot = static_cast<int>(i);
      analysis.via = ReachAnalysis::Via::kDirect;
      analysis.candidates.assign(slots.begin(),
                                 slots.begin() + static_cast<long>(i) + 1);
      return analysis;
    }
  }

  // Double stamp: equal adjacent slots without the destination appearing —
  // either an alias of the destination or the penultimate hop seen on both
  // directions. Either way, treat it as the reach point (Appx C).
  if (enable_double_stamp) {
    for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
      if (slots[i] == slots[i + 1]) {
        analysis.reach_slot = static_cast<int>(i);
        analysis.via = ReachAnalysis::Via::kDoubleStamp;
        analysis.candidates.assign(slots.begin(),
                                   slots.begin() + static_cast<long>(i) + 1);
        return analysis;
      }
    }
  }

  // Loop: a ... a with a loop-free body in between. The packet reached the
  // destination somewhere inside the body; every address up to the second
  // `a` is a potential forward-path hop, hence an ingress candidate.
  if (enable_loop) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      for (std::size_t j = i + 2; j < slots.size(); ++j) {
        if (slots[i] == slots[j]) {
          analysis.reach_slot = static_cast<int>(i) + 1;
          analysis.via = ReachAnalysis::Via::kLoop;
          for (std::size_t k = 0; k < j; ++k) {
            if (std::find(analysis.candidates.begin(),
                          analysis.candidates.end(),
                          slots[k]) == analysis.candidates.end()) {
              analysis.candidates.push_back(slots[k]);
            }
          }
          return analysis;
        }
      }
    }
  }

  return analysis;
}

std::vector<VpDistance> PrefixPlan::fallback_ranking() const {
  std::vector<VpDistance> ranking;
  for (const auto& info : vp_info) {
    if (!info.in_range()) continue;
    const double mean = info.mean_distance();
    if (mean > 8.0) continue;  // Out of useful RR range.
    ranking.push_back(VpDistance{info.vp, static_cast<int>(mean + 0.5)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const VpDistance& a, const VpDistance& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.vp < b.vp;
            });
  return ranking;
}

IngressMetrics::IngressMetrics(obs::MetricsRegistry& registry) {
  surveys = &registry.counter("revtr_ingress_surveys_total");
  plans = &registry.gauge("revtr_ingress_plans");
  prefixes_covered = &registry.counter("revtr_ingress_prefixes_covered_total");
}

IngressDiscovery::IngressDiscovery(probing::Prober& prober,
                                   const topology::Topology& topo,
                                   Options options)
    : prober_(prober), topo_(topo), options_(options) {}

std::shared_ptr<const PrefixPlan> IngressDiscovery::plan_for(
    PrefixId prefix) const {
  const util::SharedLock lock(mu_);
  const auto it = plans_.find(prefix);
  return it == plans_.end() ? nullptr : it->second;
}

std::shared_ptr<const PrefixPlan> IngressDiscovery::discover(
    PrefixId prefix, std::span<const HostId> vps, util::Rng& rng,
    std::span<const HostId> exclude) {
  // Surveys go through the shared control-plane prober, so serializing the
  // whole survey (not just the map insert) is required for correctness, not
  // merely convenience.
  const util::ExclusiveLock lock(mu_);
  // Built fresh and swapped in, never rebuilt in place: holders of the old
  // snapshot keep a consistent plan across a re-discovery.
  const auto snapshot = std::make_shared<PrefixPlan>();
  PrefixPlan& plan = *snapshot;
  plans_[prefix] = snapshot;
  plan.prefix = prefix;
  if (const IngressMetrics* metrics = metrics_.load(std::memory_order_acquire);
      metrics != nullptr) {
    metrics->surveys->add();
    metrics->plans->set(static_cast<std::int64_t>(plans_.size()));
  }

  // The survey is offline measurement (Q3): its probes must never appear in
  // a request's online budget, whichever caller triggers it.
  const probing::Prober::OfflineScope offline(prober_);

  // Pick survey destinations: ping-responsive hosts of the prefix (the
  // hitlist view), excluding any caller-reserved hosts. Infrastructure
  // prefixes have no hosts; there the hitlist entries are responsive router
  // interfaces.
  std::vector<Ipv4Addr> dests;
  for (const HostId host_id : topo_.hosts_in_prefix(prefix)) {
    if (std::find(exclude.begin(), exclude.end(), host_id) != exclude.end()) {
      continue;
    }
    const auto& host = topo_.host(host_id);
    if (!host.ping_responsive) continue;
    dests.push_back(host.addr);
    if (dests.size() == options_.destinations_per_prefix) break;
  }
  if (dests.size() < options_.destinations_per_prefix) {
    for (const auto addr : topo_.addresses_in_prefix(prefix, 32)) {
      if (dests.size() >= options_.destinations_per_prefix) break;
      if (std::find(dests.begin(), dests.end(), addr) != dests.end()) {
        continue;
      }
      const auto owner = topo_.interface_at(addr);
      if (!owner || !topo_.router(owner->router).responds_ping) continue;
      dests.push_back(addr);
    }
  }
  if (dests.empty()) return snapshot;

  const net::Ipv4Prefix& bgp_prefix = topo_.prefix(prefix).prefix;

  // Probe every VP toward each destination; collect reach + candidates.
  struct VpSurvey {
    HostId vp;
    std::vector<Ipv4Addr> candidates;  // Intersection across destinations.
    std::vector<Ipv4Addr> slots_d1;    // For candidate distances.
  };
  std::vector<VpSurvey> surveys;

  for (const HostId vp : vps) {
    PrefixPlan::VpInfo info;
    info.vp = vp;
    std::vector<std::vector<Ipv4Addr>> candidate_sets;
    std::vector<Ipv4Addr> first_slots;
    for (std::size_t d = 0; d < dests.size(); ++d) {
      const auto result = prober_.rr_ping(vp, dests[d]);
      if (!result.responded) continue;
      const auto analysis =
          analyze_reach(result.slots, bgp_prefix,
                        options_.enable_double_stamp, options_.enable_loop);
      if (analysis.reach_slot < 0) continue;
      const int distance = analysis.reach_slot + 1;
      if (d == 0) {
        info.dist_d1 = distance;
        first_slots = result.slots;
      } else {
        info.dist_d2 = distance;
      }
      candidate_sets.push_back(analysis.candidates);
    }
    plan.vp_info.push_back(info);
    if (candidate_sets.empty()) continue;

    // Ingress candidates must appear on every responding path.
    std::vector<Ipv4Addr> common = candidate_sets.front();
    for (std::size_t s = 1; s < candidate_sets.size(); ++s) {
      std::vector<Ipv4Addr> next;
      for (const auto addr : common) {
        if (std::find(candidate_sets[s].begin(), candidate_sets[s].end(),
                      addr) != candidate_sets[s].end()) {
          next.push_back(addr);
        }
      }
      common = std::move(next);
    }
    if (!common.empty()) {
      surveys.push_back(VpSurvey{vp, std::move(common),
                                 std::move(first_slots)});
    }
  }

  // Greedy set cover: ingress candidates covering the most uncovered VPs
  // win; ties break randomly (§4.3).
  std::map<Ipv4Addr, std::vector<std::size_t>> covering;  // addr -> surveys.
  for (std::size_t s = 0; s < surveys.size(); ++s) {
    for (const auto addr : surveys[s].candidates) {
      covering[addr].push_back(s);
    }
  }
  std::vector<bool> covered(surveys.size(), false);
  std::size_t remaining = surveys.size();
  while (remaining > 0) {
    std::vector<Ipv4Addr> best_addrs;
    std::size_t best_count = 0;
    for (const auto& [addr, survey_ids] : covering) {
      std::size_t count = 0;
      for (const std::size_t s : survey_ids) count += !covered[s];
      if (count > best_count) {
        best_count = count;
        best_addrs = {addr};
      } else if (count == best_count && count > 0) {
        best_addrs.push_back(addr);
      }
    }
    if (best_count == 0) break;
    const Ipv4Addr chosen = best_addrs[rng.below(best_addrs.size())];

    Ingress ingress;
    ingress.addr = chosen;
    for (const std::size_t s : covering[chosen]) {
      if (covered[s]) continue;
      covered[s] = true;
      --remaining;
      // Distance of this VP to the ingress: position in its observed path.
      const auto& slots = surveys[s].slots_d1;
      const auto it = std::find(slots.begin(), slots.end(), chosen);
      const int distance =
          it == slots.end() ? 9 : static_cast<int>(it - slots.begin()) + 1;
      ingress.vps.push_back(VpDistance{surveys[s].vp, distance});
    }
    std::sort(ingress.vps.begin(), ingress.vps.end(),
              [](const VpDistance& a, const VpDistance& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.vp < b.vp;
              });
    plan.ingresses.push_back(std::move(ingress));
  }

  // Greedy picks in decreasing coverage already; keep that order stable.
  std::stable_sort(plan.ingresses.begin(), plan.ingresses.end(),
                   [](const Ingress& a, const Ingress& b) {
                     return a.vps.size() > b.vps.size();
                   });
  if (const IngressMetrics* metrics = metrics_.load(std::memory_order_acquire);
      metrics != nullptr && plan.has_ingresses()) {
    metrics->prefixes_covered->add();
  }
  return snapshot;
}

std::vector<Attempt> attempt_plan(const PrefixPlan& plan,
                                  std::size_t max_per_ingress) {
  std::vector<Attempt> attempts;
  if (plan.has_ingresses()) {
    // Round-robin over ingresses: first the closest VP of each ingress (in
    // coverage order), then the backups.
    for (std::size_t round = 0; round < max_per_ingress; ++round) {
      for (std::size_t rank = 0; rank < plan.ingresses.size(); ++rank) {
        const auto& ingress = plan.ingresses[rank];
        if (round >= ingress.vps.size()) continue;
        attempts.push_back(
            Attempt{ingress.vps[round].vp, ingress.addr, rank});
      }
    }
    return attempts;
  }
  const auto ranking = plan.fallback_ranking();
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    attempts.push_back(Attempt{ranking[i].vp, Ipv4Addr{}, i});
  }
  return attempts;
}

std::vector<HostId> revtr1_vp_order(const PrefixPlan& plan) {
  // The 2010 system's per-prefix set cover: order by the number of
  // surveyed destinations each VP can reach. It optimizes coverage, not
  // proximity — it does not know which in-range VP is *closest*, which is
  // exactly the weakness Fig 6b exposes.
  std::vector<PrefixPlan::VpInfo> infos = plan.vp_info;
  std::sort(infos.begin(), infos.end(),
            [](const PrefixPlan::VpInfo& a, const PrefixPlan::VpInfo& b) {
              const int ra = (a.dist_d1 >= 0) + (a.dist_d2 >= 0);
              const int rb = (b.dist_d1 >= 0) + (b.dist_d2 >= 0);
              if (ra != rb) return ra > rb;
              return a.vp < b.vp;
            });
  std::vector<HostId> order;
  order.reserve(infos.size());
  for (const auto& info : infos) order.push_back(info.vp);
  return order;
}

std::vector<HostId> global_vp_order(
    std::span<const PrefixPlan* const> plans) {
  std::map<HostId, std::size_t> coverage;
  for (const PrefixPlan* plan : plans) {
    if (plan == nullptr) continue;
    for (const auto& info : plan->vp_info) {
      coverage.try_emplace(info.vp, 0);
      if (info.in_range()) ++coverage[info.vp];
    }
  }
  std::vector<std::pair<HostId, std::size_t>> ranked(coverage.begin(),
                                                     coverage.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<HostId> order;
  order.reserve(ranked.size());
  for (const auto& [vp, count] : ranked) order.push_back(vp);
  return order;
}

std::optional<VpDistance> optimal_vp(const PrefixPlan& plan) {
  std::optional<VpDistance> best;
  for (const auto& info : plan.vp_info) {
    if (!info.in_range()) continue;
    const int distance = static_cast<int>(info.mean_distance() + 0.5);
    if (!best || distance < best->distance) {
      best = VpDistance{info.vp, distance};
    }
  }
  return best;
}

}  // namespace revtr::vpselect
