#!/bin/sh
# Build, test, and regenerate every paper table/figure.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build
for b in build/bench/*; do [ -x "$b" ] && "$b"; done
for e in build/examples/*; do [ -x "$e" ] && "$e"; done
