#include "net/wire.h"

#include <stdexcept>

#include "net/checksum.h"
#include "util/check.h"

namespace revtr::net {

namespace {

using util::ByteReader;
using util::checked_cast;
using util::truncate_cast;

constexpr std::uint8_t kProtocolIcmp = 1;
constexpr std::uint8_t kIcmpEchoReply = 0;
constexpr std::uint8_t kIcmpDestUnreachable = 3;
constexpr std::uint8_t kIcmpEchoRequest = 8;
constexpr std::uint8_t kIcmpTimeExceeded = 11;

// IPv4 header geometry (RFC 791).
constexpr std::size_t kFixedHeaderLen = 20;
constexpr std::size_t kMinIcmpLen = 8;
// An ICMP error quotes the original IPv4 header (20 bytes, no options) plus
// the first 8 bytes of its payload.
constexpr std::size_t kQuoteLen = 28;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(truncate_cast<std::uint8_t>(v >> 8));
  out.push_back(truncate_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(truncate_cast<std::uint8_t>(v >> 24));
  out.push_back(truncate_cast<std::uint8_t>(v >> 16));
  out.push_back(truncate_cast<std::uint8_t>(v >> 8));
  out.push_back(truncate_cast<std::uint8_t>(v));
}

std::uint8_t icmp_type_code(IcmpType type) {
  switch (type) {
    case IcmpType::kEchoRequest:
      return kIcmpEchoRequest;
    case IcmpType::kEchoReply:
      return kIcmpEchoReply;
    case IcmpType::kTimeExceeded:
      return kIcmpTimeExceeded;
    case IcmpType::kDestUnreachable:
      return kIcmpDestUnreachable;
  }
  return kIcmpEchoRequest;
}

std::optional<IcmpType> icmp_type_from_code(std::uint8_t code) {
  switch (code) {
    case kIcmpEchoRequest:
      return IcmpType::kEchoRequest;
    case kIcmpEchoReply:
      return IcmpType::kEchoReply;
    case kIcmpTimeExceeded:
      return IcmpType::kTimeExceeded;
    case kIcmpDestUnreachable:
      return IcmpType::kDestUnreachable;
    default:
      return std::nullopt;
  }
}

std::optional<Packet> fail(DecodeError reason, DecodeError* error) {
  if (error != nullptr) *error = reason;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kTruncated:
      return "truncated";
    case DecodeError::kBadVersion:
      return "bad-version";
    case DecodeError::kBadHeaderLength:
      return "bad-header-length";
    case DecodeError::kBadTotalLength:
      return "bad-total-length";
    case DecodeError::kHeaderChecksum:
      return "header-checksum";
    case DecodeError::kNotIcmp:
      return "not-icmp";
    case DecodeError::kBadOptionLength:
      return "bad-option-length";
    case DecodeError::kBadRecordRoute:
      return "bad-record-route";
    case DecodeError::kBadTimestamp:
      return "bad-timestamp";
    case DecodeError::kIcmpChecksum:
      return "icmp-checksum";
    case DecodeError::kBadIcmpType:
      return "bad-icmp-type";
    case DecodeError::kTruncatedQuote:
      return "truncated-quote";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_packet(const Packet& packet) {
  // --- Options area, padded to a 4-byte boundary with EOL (0). ---
  std::vector<std::uint8_t> options;
  if (packet.rr) packet.rr->encode(options);
  if (packet.ts) packet.ts->encode(options);
  while (options.size() % 4 != 0) options.push_back(0);
  if (options.size() > 40) {
    // IPv4 caps the header at 60 bytes (IHL 15): a full Record Route and a
    // Timestamp option cannot share one packet, which is one reason the
    // real system issues them separately.
    throw std::length_error("IP options exceed the 40-byte header budget");
  }

  const std::size_t header_len = kFixedHeaderLen + options.size();
  const auto ihl = checked_cast<std::uint8_t>(header_len / 4);

  // --- ICMP message. ---
  std::vector<std::uint8_t> icmp;
  icmp.push_back(icmp_type_code(packet.type));
  icmp.push_back(0);  // code
  put_u16(icmp, 0);   // checksum placeholder
  if (packet.type == IcmpType::kEchoRequest ||
      packet.type == IcmpType::kEchoReply) {
    put_u16(icmp, packet.icmp_id);
    put_u16(icmp, packet.icmp_seq);
  } else {
    put_u32(icmp, 0);  // unused
    // Quoted original IPv4 header (20 bytes, no options) + 8 ICMP bytes.
    icmp.push_back(0x45);
    icmp.push_back(0);
    put_u16(icmp, kQuoteLen);
    put_u16(icmp, 0);
    put_u16(icmp, 0);
    icmp.push_back(1);  // quoted TTL (expired)
    icmp.push_back(kProtocolIcmp);
    put_u16(icmp, 0);
    put_u32(icmp, packet.dst.value());         // quoted src = original sender
    put_u32(icmp, packet.quoted_dst.value());  // quoted dst
    icmp.push_back(kIcmpEchoRequest);
    icmp.push_back(0);
    put_u16(icmp, 0);
    put_u16(icmp, packet.icmp_id);
    put_u16(icmp, packet.icmp_seq);
  }
  const std::uint16_t icmp_sum = internet_checksum(icmp);
  icmp[2] = truncate_cast<std::uint8_t>(icmp_sum >> 8);
  icmp[3] = truncate_cast<std::uint8_t>(icmp_sum);

  // --- IPv4 header. ---
  std::vector<std::uint8_t> out;
  out.reserve(header_len + icmp.size());
  out.push_back(truncate_cast<std::uint8_t>(0x40 | ihl));
  out.push_back(0);  // TOS
  put_u16(out, checked_cast<std::uint16_t>(header_len + icmp.size()));
  put_u16(out, 0);  // identification
  put_u16(out, 0);  // flags/fragment offset
  out.push_back(packet.ttl);
  out.push_back(kProtocolIcmp);
  put_u16(out, 0);  // header checksum placeholder
  put_u32(out, packet.src.value());
  put_u32(out, packet.dst.value());
  out.insert(out.end(), options.begin(), options.end());

  const std::uint16_t header_sum =
      internet_checksum({out.data(), header_len});
  out[10] = truncate_cast<std::uint8_t>(header_sum >> 8);
  out[11] = truncate_cast<std::uint8_t>(header_sum);

  out.insert(out.end(), icmp.begin(), icmp.end());
  return out;
}

std::optional<Packet> decode_packet(std::span<const std::uint8_t> bytes,
                                    DecodeError* error) {
  if (error != nullptr) *error = DecodeError::kNone;

  // --- Fixed IPv4 header. ---
  ByteReader header(bytes);
  const std::uint8_t ver_ihl = header.u8();
  header.skip(1);  // TOS (not modelled)
  const std::uint16_t total_len = header.u16();
  header.skip(4);  // identification + flags/fragment offset (not modelled)
  const std::uint8_t ttl = header.u8();
  const std::uint8_t protocol = header.u8();
  header.skip(2);  // checksum, verified over the whole header below
  const std::uint32_t src = header.u32();
  const std::uint32_t dst = header.u32();
  if (!header.ok()) return fail(DecodeError::kTruncated, error);

  if ((ver_ihl >> 4) != 4) return fail(DecodeError::kBadVersion, error);
  const std::size_t header_len = std::size_t{ver_ihl & 0x0fu} * 4;
  if (header_len < kFixedHeaderLen || header_len > bytes.size()) {
    return fail(DecodeError::kBadHeaderLength, error);
  }
  // The total-length field is attacker-controlled: it must cover the header
  // plus a minimal ICMP message and must not overrun the buffer. Everything
  // after it (link-layer padding) is ignored.
  if (total_len < header_len + kMinIcmpLen || total_len > bytes.size()) {
    return fail(DecodeError::kBadTotalLength, error);
  }
  if (!checksum_ok(bytes.subspan(0, header_len))) {
    return fail(DecodeError::kHeaderChecksum, error);
  }
  if (protocol != kProtocolIcmp) return fail(DecodeError::kNotIcmp, error);

  Packet packet;
  packet.ttl = ttl;
  packet.src = Ipv4Addr(src);
  packet.dst = Ipv4Addr(dst);

  // --- Options. Each option's declared length is validated against the
  // IHL-declared option area before any bytes are read. ---
  ByteReader options(bytes.subspan(kFixedHeaderLen,
                                   header_len - kFixedHeaderLen));
  while (!options.at_end()) {
    const std::uint8_t kind = options.peek_u8();
    if (kind == 0) break;  // EOL: remainder is padding.
    if (kind == 1) {       // NOP
      options.skip(1);
      continue;
    }
    const std::uint8_t opt_len = options.peek_u8(1);
    if (options.remaining() < 2 || opt_len < 2 ||
        opt_len > options.remaining()) {
      return fail(DecodeError::kBadOptionLength, error);
    }
    const auto opt = options.bytes(opt_len);
    REVTR_DCHECK(options.ok());
    if (kind == RecordRouteOption::kType) {
      auto rr = RecordRouteOption::decode(opt);
      if (!rr) return fail(DecodeError::kBadRecordRoute, error);
      packet.rr = *rr;
    } else if (kind == TimestampOption::kType) {
      auto ts = TimestampOption::decode(opt);
      if (!ts) return fail(DecodeError::kBadTimestamp, error);
      packet.ts = *ts;
    }
  }

  // --- ICMP. ---
  const auto icmp_bytes = bytes.subspan(header_len, total_len - header_len);
  if (!checksum_ok(icmp_bytes)) return fail(DecodeError::kIcmpChecksum, error);
  ByteReader icmp(icmp_bytes);
  const auto type = icmp_type_from_code(icmp.u8());
  if (!type) return fail(DecodeError::kBadIcmpType, error);
  packet.type = *type;
  icmp.skip(3);  // code + checksum
  if (*type == IcmpType::kEchoRequest || *type == IcmpType::kEchoReply) {
    packet.icmp_id = icmp.u16();
    packet.icmp_seq = icmp.u16();
    REVTR_DCHECK(icmp.ok());  // total_len guarantees the 8 ICMP bytes.
  } else {
    icmp.skip(4);   // unused
    icmp.skip(16);  // quoted header through the quoted source address
    packet.quoted_dst = Ipv4Addr(icmp.u32());
    icmp.skip(4);  // quoted ICMP type/code/checksum
    packet.icmp_id = icmp.u16();
    packet.icmp_seq = icmp.u16();
    if (!icmp.ok()) return fail(DecodeError::kTruncatedQuote, error);
  }
  return packet;
}

}  // namespace revtr::net
