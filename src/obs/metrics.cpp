#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace revtr::obs {

std::size_t metric_shard() {
  const std::size_t worker = util::ThreadPool::current_worker();
  if (worker == util::ThreadPool::kNotAWorker) return 0;
  return 1 + (worker % (kMetricShards - 1));
}

// --- Histogram. -------------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < (1u << kFirstOctave)) return static_cast<std::size_t>(value);
  const int octave =
      static_cast<int>(std::bit_width(value)) - 1;  // value in [2^o, 2^{o+1}).
  if (octave > kLastOctave) return kOverflowBucket;
  // Two bits below the leading bit select one of 4 linear sub-buckets.
  const auto sub = static_cast<std::size_t>(
      (value >> (octave - 2)) & (kSubBuckets - 1));
  return kSubBuckets +
         static_cast<std::size_t>(octave - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_le(std::size_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;  // Exact buckets: le == value.
  if (bucket >= kOverflowBucket) return ~0ull;  // Rendered as +Inf.
  const std::size_t rel = bucket - kSubBuckets;
  const int octave = kFirstOctave + static_cast<int>(rel / kSubBuckets);
  const std::uint64_t sub = rel % kSubBuckets;
  const std::uint64_t base = 1ull << octave;
  // Upper bound of sub-bucket `sub`: base + (sub+1) * base/4 - 1.
  return base + (sub + 1) * (base >> 2) - 1;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.buckets[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// --- Registry. --------------------------------------------------------------

// entries_ is a node-based map whose values hold the instrument behind a
// unique_ptr; entries are never erased, so the returned reference outlives
// the lock and stays valid across concurrent inserts.
// lint: stable-ref(never-erased node map, instrument behind unique_ptr)
Counter& MetricsRegistry::counter(std::string_view name) {
  {
    const util::SharedLock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      REVTR_CHECK(it->second.counter != nullptr);
      return *it->second.counter;
    }
  }
  const util::ExclusiveLock lock(mu_);
  auto& entry = entries_[std::string(name)];
  if (!entry.counter) {
    REVTR_CHECK(!entry.gauge && !entry.histogram);
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

// lint: stable-ref(same contract as counter(): stable node, stable target)
Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    const util::SharedLock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      REVTR_CHECK(it->second.gauge != nullptr);
      return *it->second.gauge;
    }
  }
  const util::ExclusiveLock lock(mu_);
  auto& entry = entries_[std::string(name)];
  if (!entry.gauge) {
    REVTR_CHECK(!entry.counter && !entry.histogram);
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

// lint: stable-ref(same contract as counter(): stable node, stable target)
Histogram& MetricsRegistry::histogram(std::string_view name) {
  {
    const util::SharedLock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      REVTR_CHECK(it->second.histogram != nullptr);
      return *it->second.histogram;
    }
  }
  const util::ExclusiveLock lock(mu_);
  auto& entry = entries_[std::string(name)];
  if (!entry.histogram) {
    REVTR_CHECK(!entry.counter && !entry.gauge);
    entry.histogram = std::make_unique<Histogram>();
  }
  return *entry.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const util::SharedLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      snap.counters.push_back({name, entry.counter->total()});
    } else if (entry.gauge) {
      snap.gauges.push_back({name, entry.gauge->value()});
    } else if (entry.histogram) {
      HistogramSample sample;
      sample.name = name;
      sample.count = entry.histogram->count();
      sample.sum = entry.histogram->sum();
      sample.overflow =
          entry.histogram->bucket_count(Histogram::kOverflowBucket);
      std::uint64_t cumulative = 0;
      std::size_t highest = 0;
      std::vector<std::uint64_t> raw(Histogram::kOverflowBucket);
      for (std::size_t b = 0; b < Histogram::kOverflowBucket; ++b) {
        raw[b] = entry.histogram->bucket_count(b);
        if (raw[b] != 0) highest = b + 1;
      }
      for (std::size_t b = 0; b < highest; ++b) {
        cumulative += raw[b];
        sample.buckets.emplace_back(Histogram::bucket_le(b), cumulative);
      }
      // Overflow samples render only under +Inf, so trimming at the highest
      // non-empty finite bucket would leave quantile estimation with no
      // finite bound to fall back on when the rank lands in the overflow
      // mass. Keep the largest finite bound in the sample for that case.
      if (sample.overflow != 0 && highest < Histogram::kOverflowBucket) {
        sample.buckets.emplace_back(
            Histogram::bucket_le(Histogram::kOverflowBucket - 1), cumulative);
      }
      snap.histograms.push_back(std::move(sample));
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  const util::ExclusiveLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  const util::SharedLock lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// --- Exporters. -------------------------------------------------------------

namespace {

// Family name = series name up to the label block, e.g.
// "revtr_probes_total{type=...}" -> "revtr_probes_total".
std::string_view family_of(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

// Splice a label into a (possibly already labelled) series name:
// splice_label("a_total", "le", "7") -> a_total{le="7"}
// splice_label("a_total{x=\"1\"}", "le", "7") -> a_total{x="1",le="7"}
std::string splice_label(std::string_view name, std::string_view key,
                         std::string_view value) {
  std::string out;
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) {
    out.append(name);
    out.push_back('{');
  } else {
    out.append(name.substr(0, name.size() - 1));  // Drop trailing '}'.
    out.push_back(',');
  }
  out.append(key);
  out.append("=\"");
  out.append(value);
  out.append("\"}");
  return out;
}

void emit_type_line(std::string& out, std::string_view family,
                    std::string_view kind, std::string& last_family) {
  if (family == last_family) return;
  last_family = std::string(family);
  out.append("# TYPE ");
  out.append(family);
  out.push_back(' ');
  out.append(kind);
  out.push_back('\n');
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const auto& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_family;
  for (const auto& c : counters) {
    emit_type_line(out, family_of(c.name), "counter", last_family);
    out.append(c.name);
    out.push_back(' ');
    out.append(std::to_string(c.value));
    out.push_back('\n');
  }
  last_family.clear();
  for (const auto& g : gauges) {
    emit_type_line(out, family_of(g.name), "gauge", last_family);
    out.append(g.name);
    out.push_back(' ');
    out.append(std::to_string(g.value));
    out.push_back('\n');
  }
  last_family.clear();
  for (const auto& h : histograms) {
    emit_type_line(out, family_of(h.name), "histogram", last_family);
    const std::string bucket_name = std::string(family_of(h.name)) + "_bucket";
    for (const auto& [le, cumulative] : h.buckets) {
      out.append(splice_label(bucket_name, "le", std::to_string(le)));
      out.push_back(' ');
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    out.append(splice_label(bucket_name, "le", "+Inf"));
    out.push_back(' ');
    out.append(std::to_string(h.count));
    out.push_back('\n');
    out.append(family_of(h.name));
    out.append("_sum ");
    out.append(std::to_string(h.sum));
    out.push_back('\n');
    out.append(family_of(h.name));
    out.append("_count ");
    out.append(std::to_string(h.count));
    out.push_back('\n');
  }
  return out;
}

double histogram_quantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(sample.count);
  std::uint64_t prev_le = 0;
  std::uint64_t prev_cum = 0;
  for (const auto& [le, cum] : sample.buckets) {
    // Only a bucket with mass can contain the rank. An empty bucket passing
    // `cum >= rank` happens exactly at q == 0, where the right estimate is
    // the lower edge of the first *occupied* bucket — not the bound of
    // whichever empty bucket precedes it.
    if (cum > prev_cum && static_cast<double>(cum) >= rank) {
      const std::uint64_t in_bucket = cum - prev_cum;
      const double fraction =
          (rank - static_cast<double>(prev_cum)) /
          static_cast<double>(in_bucket);
      return static_cast<double>(prev_le) +
             fraction * static_cast<double>(le - prev_le);
    }
    prev_le = le;
    prev_cum = cum;
  }
  // The rank lands past the last finite bucket (overflow samples): the
  // best finite statement is the largest recorded finite bound.
  return static_cast<double>(prev_le);
}

util::Json MetricsSnapshot::to_json() const {
  util::Json root = util::Json::object();
  util::Json jc = util::Json::object();
  for (const auto& c : counters) jc[c.name] = util::Json(c.value);
  util::Json jg = util::Json::object();
  for (const auto& g : gauges) jg[g.name] = util::Json(g.value);
  util::Json jh = util::Json::object();
  for (const auto& h : histograms) {
    util::Json entry = util::Json::object();
    entry["count"] = util::Json(h.count);
    entry["sum"] = util::Json(h.sum);
    entry["overflow"] = util::Json(h.overflow);
    util::Json buckets = util::Json::array();
    for (const auto& [le, cumulative] : h.buckets) {
      util::Json b = util::Json::object();
      b["le"] = util::Json(le);
      b["count"] = util::Json(cumulative);
      buckets.push_back(std::move(b));
    }
    entry["buckets"] = std::move(buckets);
    jh[h.name] = std::move(entry);
  }
  root["counters"] = std::move(jc);
  root["gauges"] = std::move(jg);
  root["histograms"] = std::move(jh);
  return root;
}

std::string MetricsSnapshot::to_table() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    util::TextTable table({"metric", "value"});
    for (const auto& c : counters) {
      table.add_row({c.name, util::cell_count(c.value)});
    }
    for (const auto& g : gauges) {
      table.add_row({g.name, std::to_string(g.value)});
    }
    out += table.render();
  }
  if (!histograms.empty()) {
    if (!out.empty()) out += "\n";
    util::TextTable table({"histogram", "count", "sum", "mean"});
    for (const auto& h : histograms) {
      const double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) /
                             static_cast<double>(h.count);
      table.add_row({h.name, util::cell_count(h.count),
                     util::cell_count(h.sum), util::cell(mean)});
    }
    out += table.render();
  }
  return out;
}

}  // namespace revtr::obs
