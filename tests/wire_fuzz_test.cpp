// Deterministic, seed-driven fuzz harness for the wire codec trust boundary.
//
// decode_packet consumes bytes from the (simulated) Internet, so it must be
// total: any byte string either decodes to a Packet or is rejected with a
// DecodeError — never a crash, never an out-of-bounds read, and never an
// inconsistent round-trip. The harness mutates valid encodings with bit
// flips, truncations, and targeted header lies (IHL, total length, option
// length, RR pointer, TS flags), then checks two properties on every mutant:
//
//   1. Totality: decode_packet returns (under ASan/UBSan in scripts/check.sh
//      this also proves no memory error / UB on the way).
//   2. Round-trip consistency: if a mutant decodes, re-encoding the decoded
//      Packet and decoding again yields the same Packet — i.e. decode is a
//      normalizing projection, so a forged reply cannot smuggle state that
//      survives one hop through the codec but changes on the next.
//
// Everything is driven by revtr::util::Rng with fixed seeds: failures
// reproduce bit-for-bit from the iteration number alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "net/checksum.h"
#include "net/ip_options.h"
#include "net/packet.h"
#include "net/wire.h"
#include "server/frame.h"
#include "util/check.h"
#include "util/rng.h"

namespace revtr::net {
namespace {

constexpr std::uint64_t kSeed = 0x7e7e5eedULL;
// Acceptance floor: >= 10,000 mutated packets per full run. Split across the
// mutation strategies below; each test states its share.
constexpr std::size_t kMutationIters = 6000;
constexpr std::size_t kChecksumFixedIters = 3000;
constexpr std::size_t kRandomBufferIters = 2000;

// --- Seed corpus: one valid encoding per packet shape the codec supports. ---
std::vector<Packet> seed_corpus() {
  std::vector<Packet> corpus;

  // Plain echo request / reply.
  corpus.push_back(make_echo_request(Ipv4Addr(10, 0, 0, 1),
                                     Ipv4Addr(192, 0, 2, 7), 0x1234, 1));
  {
    Packet reply = make_echo_request(Ipv4Addr(192, 0, 2, 7),
                                     Ipv4Addr(10, 0, 0, 1), 0x1234, 2);
    reply.type = IcmpType::kEchoReply;
    corpus.push_back(reply);
  }

  // Record Route at several fill levels (empty, partial, full).
  for (const std::size_t fill : {std::size_t{0}, std::size_t{4},
                                 RecordRouteOption::kMaxSlots}) {
    Packet p = make_echo_request(Ipv4Addr(10, 0, 0, 2),
                                 Ipv4Addr(198, 51, 100, 3), 7, 7);
    RecordRouteOption rr;
    for (std::size_t i = 0; i < fill; ++i) {
      rr.stamp(Ipv4Addr(util::truncate_cast<std::uint32_t>(0x0a000100 + i)));
    }
    p.rr = rr;
    corpus.push_back(p);
  }

  // Timestamp prespec with 1..4 entries and varying stamp progress.
  for (std::size_t entries = 1; entries <= TimestampOption::kMaxEntries;
       ++entries) {
    for (std::size_t stamped = 0; stamped <= entries; ++stamped) {
      Packet p = make_echo_request(Ipv4Addr(10, 0, 0, 3),
                                   Ipv4Addr(203, 0, 113, 9), 9, 9);
      std::vector<Ipv4Addr> addrs;
      for (std::size_t i = 0; i < entries; ++i) {
        addrs.push_back(
            Ipv4Addr(util::truncate_cast<std::uint32_t>(0xc0000200 + i)));
      }
      auto ts = TimestampOption::prespecified(addrs);
      for (std::size_t i = 0; i < stamped; ++i) {
        ts.try_stamp(addrs[i],
                     util::truncate_cast<std::uint32_t>(1000 * (i + 1)));
      }
      p.ts = ts;
      corpus.push_back(p);
    }
  }

  // ICMP errors (time exceeded, destination unreachable), with and without
  // a Record Route accumulated before the TTL expired.
  {
    const Packet probe = make_echo_request(Ipv4Addr(10, 0, 0, 4),
                                           Ipv4Addr(192, 0, 2, 99), 21, 3, 4);
    Packet exceeded = make_time_exceeded(probe, Ipv4Addr(198, 51, 100, 42));
    corpus.push_back(exceeded);
    RecordRouteOption rr;
    rr.stamp(Ipv4Addr(198, 51, 100, 1));
    rr.stamp(Ipv4Addr(198, 51, 100, 2));
    exceeded.rr = rr;
    corpus.push_back(exceeded);

    Packet unreachable = make_time_exceeded(probe, Ipv4Addr(192, 0, 2, 99));
    unreachable.type = IcmpType::kDestUnreachable;
    corpus.push_back(unreachable);
  }

  return corpus;
}

std::vector<std::vector<std::uint8_t>> encoded_corpus() {
  std::vector<std::vector<std::uint8_t>> encoded;
  for (const auto& packet : seed_corpus()) {
    encoded.push_back(encode_packet(packet));
  }
  return encoded;
}

// Recompute the IPv4 header and ICMP checksums so a mutant exercises the
// parsing logic *behind* the checksum gates. Best-effort on mutants whose
// geometry fields lie; never reads outside the buffer.
void fix_checksums(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 20) return;
  const std::size_t header_len = std::size_t{bytes[0] & 0x0fu} * 4;
  if (header_len < 20 || header_len > bytes.size()) return;
  bytes[10] = 0;
  bytes[11] = 0;
  const std::uint16_t header_sum =
      internet_checksum({bytes.data(), header_len});
  bytes[10] = util::truncate_cast<std::uint8_t>(header_sum >> 8);
  bytes[11] = util::truncate_cast<std::uint8_t>(header_sum);
  if (bytes.size() < header_len + 8) return;
  bytes[header_len + 2] = 0;
  bytes[header_len + 3] = 0;
  const std::uint16_t icmp_sum = internet_checksum(
      {bytes.data() + header_len, bytes.size() - header_len});
  bytes[header_len + 2] = util::truncate_cast<std::uint8_t>(icmp_sum >> 8);
  bytes[header_len + 3] = util::truncate_cast<std::uint8_t>(icmp_sum);
}

// One mutation step. Strategies 0-2 are generic (bit flip, byte smash,
// truncate/extend); 3-7 aim at the fields whose lies historically break
// parsers: IHL, total length, option kind/length, RR pointer, TS oflw/flags.
void mutate(std::vector<std::uint8_t>& bytes, util::Rng& rng) {
  if (bytes.empty()) {
    bytes.push_back(util::truncate_cast<std::uint8_t>(rng()));
    return;
  }
  switch (rng.below(8)) {
    case 0: {  // Single bit flip.
      const std::size_t i = rng.below(bytes.size());
      bytes[i] ^= util::truncate_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // Byte overwrite.
      bytes[rng.below(bytes.size())] = util::truncate_cast<std::uint8_t>(rng());
      break;
    }
    case 2: {  // Truncate or extend with junk.
      if (rng.chance(0.5)) {
        bytes.resize(rng.below(bytes.size() + 1));
      } else {
        const std::size_t extra = 1 + rng.below(16);
        for (std::size_t i = 0; i < extra; ++i) {
          bytes.push_back(util::truncate_cast<std::uint8_t>(rng()));
        }
      }
      break;
    }
    case 3: {  // Version/IHL lies.
      bytes[0] = rng.chance(0.5)
                     ? util::truncate_cast<std::uint8_t>(0x40 | rng.below(16))
                     : util::truncate_cast<std::uint8_t>(rng());
      break;
    }
    case 4: {  // Total-length lies.
      if (bytes.size() >= 4) {
        const auto lie = util::truncate_cast<std::uint16_t>(rng());
        bytes[2] = util::truncate_cast<std::uint8_t>(lie >> 8);
        bytes[3] = util::truncate_cast<std::uint8_t>(lie);
      }
      break;
    }
    case 5: {  // Option kind/length lies at the start of the option area.
      if (bytes.size() > 21) {
        if (rng.chance(0.5)) {
          bytes[20] = rng.chance(0.5)
                          ? (rng.chance(0.5) ? RecordRouteOption::kType
                                             : TimestampOption::kType)
                          : util::truncate_cast<std::uint8_t>(rng());
        } else {
          bytes[21] = util::truncate_cast<std::uint8_t>(rng());
        }
      }
      break;
    }
    case 6: {  // RR/TS pointer field lies.
      if (bytes.size() > 22) {
        bytes[22] = util::truncate_cast<std::uint8_t>(rng());
      }
      break;
    }
    case 7: {  // TS overflow/flags lies.
      if (bytes.size() > 23) {
        bytes[23] = util::truncate_cast<std::uint8_t>(rng());
      }
      break;
    }
  }
}

// Core property check shared by all fuzz loops.
void check_totality_and_round_trip(std::span<const std::uint8_t> bytes,
                                   std::size_t iteration) {
  DecodeError error = DecodeError::kNone;
  const auto decoded = decode_packet(bytes, &error);
  if (!decoded) {
    EXPECT_NE(error, DecodeError::kNone)
        << "rejection must carry a reason (iteration " << iteration << ")";
    return;
  }
  EXPECT_EQ(error, DecodeError::kNone);
  // Normalizing projection: decode(encode(decoded)) == decoded.
  const auto reencoded = encode_packet(*decoded);
  DecodeError error2 = DecodeError::kNone;
  const auto decoded2 = decode_packet(reencoded, &error2);
  ASSERT_TRUE(decoded2.has_value())
      << "re-encoded packet must decode (iteration " << iteration
      << ", reason " << to_string(error2) << ")";
  EXPECT_TRUE(*decoded2 == *decoded)
      << "decode/encode round-trip diverged (iteration " << iteration << ")";
}

// --- The fuzz loops. Together they exceed the 10,000-iteration floor. ---

TEST(WireFuzz, MutatedPacketsNeverCrashAndRoundTrip) {
  const auto corpus = encoded_corpus();
  util::Rng rng(kSeed);
  for (std::size_t iter = 0; iter < kMutationIters; ++iter) {
    std::vector<std::uint8_t> bytes = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(8);
    for (std::size_t s = 0; s < steps; ++s) mutate(bytes, rng);
    check_totality_and_round_trip(bytes, iter);
  }
}

TEST(WireFuzz, ChecksumFixedMutantsReachDeepPaths) {
  // With checksums recomputed, mutants pass the two checksum gates and
  // exercise option parsing, quote parsing, and the normalization logic.
  const auto corpus = encoded_corpus();
  util::Rng rng(kSeed ^ 0xa5a5a5a5ULL);
  std::size_t accepted = 0;
  for (std::size_t iter = 0; iter < kChecksumFixedIters; ++iter) {
    std::vector<std::uint8_t> bytes = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(4);
    for (std::size_t s = 0; s < steps; ++s) mutate(bytes, rng);
    fix_checksums(bytes);
    DecodeError error = DecodeError::kNone;
    if (decode_packet(bytes, &error)) ++accepted;
    check_totality_and_round_trip(bytes, iter);
  }
  // The gate-bypass must actually reach deep paths: if nothing decodes, the
  // harness degenerated into a checksum test.
  EXPECT_GT(accepted, kChecksumFixedIters / 20);
}

TEST(WireFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(kSeed ^ 0x5a5a5a5aULL);
  for (std::size_t iter = 0; iter < kRandomBufferIters; ++iter) {
    std::vector<std::uint8_t> bytes(rng.below(120));
    for (auto& b : bytes) b = util::truncate_cast<std::uint8_t>(rng());
    // Half the time, dress the buffer up as IPv4+ICMP so it gets past the
    // first gates with random interior.
    if (!bytes.empty() && rng.chance(0.5)) {
      bytes[0] = util::truncate_cast<std::uint8_t>(0x40 | rng.below(16));
      fix_checksums(bytes);
    }
    check_totality_and_round_trip(bytes, iter);
  }
}

TEST(WireFuzz, SeedCorpusRoundTripsExactly) {
  // The unmutated corpus must decode to the original packets: the fuzz
  // properties above are only meaningful if the baseline is exact.
  for (const auto& packet : seed_corpus()) {
    const auto bytes = encode_packet(packet);
    DecodeError error = DecodeError::kNone;
    const auto decoded = decode_packet(bytes, &error);
    ASSERT_TRUE(decoded.has_value()) << to_string(error);
    // Echo packets do not carry quoted_dst on the wire; compare the fields
    // the codec is specified to preserve.
    EXPECT_EQ(decoded->src, packet.src);
    EXPECT_EQ(decoded->dst, packet.dst);
    EXPECT_EQ(decoded->ttl, packet.ttl);
    EXPECT_EQ(decoded->type, packet.type);
    EXPECT_EQ(decoded->icmp_id, packet.icmp_id);
    EXPECT_EQ(decoded->icmp_seq, packet.icmp_seq);
    EXPECT_EQ(decoded->rr, packet.rr);
    EXPECT_EQ(decoded->ts, packet.ts);
  }
}

}  // namespace
}  // namespace revtr::net

// --- Frame-decoder fuzz: the daemon's trust boundary (server/frame.h). ----
//
// decode_frame consumes bytes a client wrote to the daemon's socket, so the
// same contract as decode_packet applies: total (every byte string either
// decodes or yields a typed FrameError — never a crash or over-read) and
// normalizing (decode(encode(decoded)) == decoded).
namespace revtr::server {
namespace {

constexpr std::uint64_t kFrameSeed = 0xf4a3e5eedULL;
constexpr std::size_t kFrameMutationIters = 6000;
constexpr std::size_t kFrameRandomIters = 2000;
constexpr std::size_t kFrameAuthGarbageIters = 2000;

// One valid message per frame type, with every enum and flag exercised.
std::vector<Message> frame_corpus() {
  std::vector<Message> corpus;
  Hello hello;
  hello.push_results = false;
  hello.api_key = "demo-key";
  corpus.push_back(hello);
  HelloOk hello_ok;
  hello_ok.tenant = 3;
  hello_ok.server_now_us = 123456789;
  hello_ok.tenant_name = "measurement-lab";
  corpus.push_back(hello_ok);
  corpus.push_back(HelloErr{RejectReason::kBadApiKey});
  Submit submit;
  submit.request_id = 0x0123456789abcdefULL;
  submit.dest_index = 42;
  submit.source_index = 1;
  submit.priority = Priority::kLow;
  submit.deadline_us = 30'000'000;
  corpus.push_back(submit);
  corpus.push_back(SubmitOk{7});
  corpus.push_back(SubmitErr{9, RejectReason::kQueueFull});
  Result result;
  result.request_id = 11;
  result.status = core::RevtrStatus::kComplete;
  result.shed = false;
  result.deadline_missed = true;
  result.sim_latency_us = 57'270'000;
  result.probes = 45;
  result.coalesced_probes = 3;
  for (std::uint8_t s = 0; s <= 6; ++s) {  // Every HopSource enumerator.
    ResultHop hop;
    hop.addr = net::Ipv4Addr(10, 0, 0, s);
    hop.source = static_cast<core::HopSource>(s);
    result.hops.push_back(hop);
  }
  corpus.push_back(result);
  corpus.push_back(Poll{16});
  corpus.push_back(PollDone{2, 5});
  corpus.push_back(Stats{});
  corpus.push_back(StatsReply{"{\"accepted\": 200}"});
  corpus.push_back(Drain{});
  corpus.push_back(DrainDone{100, 7});
  AgentRegister agent_register;
  agent_register.window = 8;
  agent_register.name = "vp-agent-1";
  corpus.push_back(agent_register);
  AgentProbe agent_probe;
  agent_probe.ticket = 0xfeedfaceULL;
  agent_probe.spec.type = probing::ProbeType::kSpoofedTimestamp;
  agent_probe.spec.from = 12;
  agent_probe.spec.target = net::Ipv4Addr(10, 1, 2, 3);
  agent_probe.spec.spoof_as = net::Ipv4Addr(10, 9, 9, 9);
  agent_probe.spec.prespec = {net::Ipv4Addr(10, 1, 2, 1),
                              net::Ipv4Addr(10, 1, 2, 2)};
  corpus.push_back(agent_probe);
  AgentProbe plain_probe;  // No spoof, no prespec: the other flag branch.
  plain_probe.ticket = 1;
  plain_probe.spec.type = probing::ProbeType::kTraceroute;
  plain_probe.spec.from = 3;
  plain_probe.spec.target = net::Ipv4Addr(10, 4, 5, 6);
  corpus.push_back(plain_probe);
  AgentProbeResult agent_result;
  agent_result.ticket = 0xfeedfaceULL;
  agent_result.reply.responded = true;
  agent_result.reply.slots = {net::Ipv4Addr(10, 0, 1, 1),
                              net::Ipv4Addr(10, 0, 1, 2)};
  agent_result.reply.stamped = {true, false};
  agent_result.reply.traceroute.reached = true;
  agent_result.reply.traceroute.duration_us = 5000;
  agent_result.reply.traceroute.hops.push_back(
      probing::TracerouteHop{net::Ipv4Addr(10, 0, 2, 1), 1200});
  agent_result.reply.traceroute.hops.push_back(
      probing::TracerouteHop{std::nullopt, 2400});  // "*" hop.
  agent_result.reply.duration_us = 7000;
  agent_result.reply.packets = 3;
  corpus.push_back(agent_result);
  corpus.push_back(AgentHeartbeat{4, 512});
  corpus.push_back(AgentDrain{99});
  return corpus;
}

std::vector<std::vector<std::uint8_t>> encoded_frame_corpus() {
  std::vector<std::vector<std::uint8_t>> encoded;
  for (const auto& message : frame_corpus()) {
    encoded.push_back(encode_frame(message));
  }
  return encoded;
}

// Mutation step for frames. Strategies 0-2 are generic; 3-5 lie in the
// header fields the decoder trusts least: magic/version/type (bytes 0-3)
// and the payload length (bytes 4-7).
void mutate_frame(std::vector<std::uint8_t>& bytes, util::Rng& rng) {
  if (bytes.empty()) {
    bytes.push_back(util::truncate_cast<std::uint8_t>(rng()));
    return;
  }
  switch (rng.below(6)) {
    case 0: {  // Single bit flip.
      const std::size_t i = rng.below(bytes.size());
      bytes[i] ^= util::truncate_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // Byte overwrite.
      bytes[rng.below(bytes.size())] =
          util::truncate_cast<std::uint8_t>(rng());
      break;
    }
    case 2: {  // Truncate or extend with junk.
      if (rng.chance(0.5)) {
        bytes.resize(rng.below(bytes.size() + 1));
      } else {
        const std::size_t extra = 1 + rng.below(16);
        for (std::size_t i = 0; i < extra; ++i) {
          bytes.push_back(util::truncate_cast<std::uint8_t>(rng()));
        }
      }
      break;
    }
    case 3: {  // Magic/version lies.
      if (bytes.size() >= 3) {
        bytes[rng.below(3)] = util::truncate_cast<std::uint8_t>(rng());
      }
      break;
    }
    case 4: {  // Frame-type lies (unknown and server/client confusions).
      if (bytes.size() >= 4) {
        bytes[3] = util::truncate_cast<std::uint8_t>(rng());
      }
      break;
    }
    case 5: {  // Length lies: oversized, undersized, or huge.
      if (bytes.size() >= 8) {
        const std::uint32_t lie =
            rng.chance(0.3) ? util::truncate_cast<std::uint32_t>(rng())
                            : util::truncate_cast<std::uint32_t>(
                                  rng.below(2 * kMaxFramePayload));
        bytes[4] = util::truncate_cast<std::uint8_t>(lie >> 24);
        bytes[5] = util::truncate_cast<std::uint8_t>(lie >> 16);
        bytes[6] = util::truncate_cast<std::uint8_t>(lie >> 8);
        bytes[7] = util::truncate_cast<std::uint8_t>(lie);
      }
      break;
    }
  }
}

// Totality + normalizing round-trip, the frame analogue of
// check_totality_and_round_trip above.
void check_frame_properties(std::span<const std::uint8_t> bytes,
                            std::size_t iteration) {
  FrameError error = FrameError::kNone;
  const auto decoded = decode_frame(bytes, &error);
  if (!decoded.has_value()) {
    EXPECT_NE(error, FrameError::kNone)
        << "rejection must carry a reason (iteration " << iteration << ")";
    return;
  }
  EXPECT_EQ(error, FrameError::kNone);
  const auto reencoded = encode_frame(*decoded);
  FrameError error2 = FrameError::kNone;
  const auto decoded2 = decode_frame(reencoded, &error2);
  ASSERT_TRUE(decoded2.has_value())
      << "re-encoded frame must decode (iteration " << iteration
      << ", reason " << to_string(error2) << ")";
  EXPECT_TRUE(*decoded2 == *decoded)
      << "frame round-trip diverged (iteration " << iteration << ")";
}

TEST(FrameFuzz, MutatedFramesNeverCrashAndRoundTrip) {
  const auto corpus = encoded_frame_corpus();
  util::Rng rng(kFrameSeed);
  std::size_t accepted = 0;
  for (std::size_t iter = 0; iter < kFrameMutationIters; ++iter) {
    std::vector<std::uint8_t> bytes = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(6);
    for (std::size_t s = 0; s < steps; ++s) mutate_frame(bytes, rng);
    FrameError error = FrameError::kNone;
    if (decode_frame(bytes, &error).has_value()) ++accepted;
    check_frame_properties(bytes, iter);
  }
  // Some mutants must survive, or the harness degenerated into a
  // header-magic test.
  EXPECT_GT(accepted, kFrameMutationIters / 50);
}

TEST(FrameFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(kFrameSeed ^ 0x5a5a5a5aULL);
  for (std::size_t iter = 0; iter < kFrameRandomIters; ++iter) {
    std::vector<std::uint8_t> bytes(rng.below(96));
    for (auto& b : bytes) b = util::truncate_cast<std::uint8_t>(rng());
    // Half the time, dress the buffer up with a valid magic/version and a
    // consistent length so it reaches the payload decoders.
    if (bytes.size() >= kFrameHeaderSize && rng.chance(0.5)) {
      bytes[0] = util::truncate_cast<std::uint8_t>(kFrameMagic >> 8);
      bytes[1] = util::truncate_cast<std::uint8_t>(kFrameMagic);
      bytes[2] = kProtoVersion;
      bytes[3] = util::truncate_cast<std::uint8_t>(1 + rng.below(18));
      const auto len =
          static_cast<std::uint32_t>(bytes.size() - kFrameHeaderSize);
      bytes[4] = util::truncate_cast<std::uint8_t>(len >> 24);
      bytes[5] = util::truncate_cast<std::uint8_t>(len >> 16);
      bytes[6] = util::truncate_cast<std::uint8_t>(len >> 8);
      bytes[7] = util::truncate_cast<std::uint8_t>(len);
    }
    check_frame_properties(bytes, iter);
  }
}

TEST(FrameFuzz, GarbageAuthPayloadsRejectTyped) {
  // The HELLO payload is the pre-auth attack surface: random key bytes,
  // lying key lengths, embedded NULs, and oversized keys must all come back
  // as typed errors (or decode to a key the daemon then rejects) — never
  // crash or over-read.
  util::Rng rng(kFrameSeed ^ 0xau);
  for (std::size_t iter = 0; iter < kFrameAuthGarbageIters; ++iter) {
    Hello hello;
    hello.push_results = rng.chance(0.5);
    const std::size_t key_len = rng.below(kMaxApiKeyLen + 1);
    hello.api_key.resize(key_len);
    for (auto& c : hello.api_key) {
      c = static_cast<char>(rng.below(256));
    }
    std::vector<std::uint8_t> bytes = encode_frame(hello);
    // Corrupt the encoded key-length byte (after the u32 proto_version and
    // the flags byte) half the time so the declared and actual lengths
    // disagree.
    if (rng.chance(0.5) && bytes.size() > kFrameHeaderSize + 5) {
      bytes[kFrameHeaderSize + 5] =
          util::truncate_cast<std::uint8_t>(rng());
    }
    check_frame_properties(bytes, iter);
  }
}

TEST(FrameFuzz, SeedCorpusRoundTripsExactly) {
  for (const auto& message : frame_corpus()) {
    const auto bytes = encode_frame(message);
    FrameError error = FrameError::kNone;
    const auto decoded = decode_frame(bytes, &error);
    ASSERT_TRUE(decoded.has_value()) << to_string(error);
    EXPECT_TRUE(*decoded == message)
        << "frame type " << to_string(frame_type_of(message));
  }
}

TEST(FrameFuzz, TypedErrorsMatchTheLie) {
  const auto valid = encode_frame(Poll{8});
  FrameError error = FrameError::kNone;

  // Truncated header: every prefix shorter than the fixed header.
  for (std::size_t n = 0; n < kFrameHeaderSize; ++n) {
    EXPECT_FALSE(
        decode_frame(std::span(valid).first(n), &error).has_value());
    EXPECT_EQ(error, FrameError::kTruncatedHeader) << "prefix " << n;
  }

  auto bad_magic = valid;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(decode_frame(bad_magic, &error).has_value());
  EXPECT_EQ(error, FrameError::kBadMagic);

  auto bad_version = valid;
  bad_version[2] = kProtoVersion + 1;
  EXPECT_FALSE(decode_frame(bad_version, &error).has_value());
  EXPECT_EQ(error, FrameError::kBadVersion);

  auto bad_type = valid;
  bad_type[3] = 0;
  EXPECT_FALSE(decode_frame(bad_type, &error).has_value());
  EXPECT_EQ(error, FrameError::kUnknownType);
  bad_type[3] = 19;  // First value past kAgentDrain.
  EXPECT_FALSE(decode_frame(bad_type, &error).has_value());
  EXPECT_EQ(error, FrameError::kUnknownType);

  auto oversized = valid;
  const std::uint32_t huge = kMaxFramePayload + 1;
  oversized[4] = util::truncate_cast<std::uint8_t>(huge >> 24);
  oversized[5] = util::truncate_cast<std::uint8_t>(huge >> 16);
  oversized[6] = util::truncate_cast<std::uint8_t>(huge >> 8);
  oversized[7] = util::truncate_cast<std::uint8_t>(huge);
  EXPECT_FALSE(decode_frame(oversized, &error).has_value());
  EXPECT_EQ(error, FrameError::kOversizedPayload);

  // Truncated payload: header promises more bytes than the buffer holds.
  EXPECT_FALSE(decode_frame(std::span(valid).first(valid.size() - 1), &error)
                   .has_value());
  EXPECT_EQ(error, FrameError::kTruncatedPayload);

  auto trailing = valid;
  trailing.push_back(0);
  EXPECT_FALSE(decode_frame(trailing, &error).has_value());
  EXPECT_EQ(error, FrameError::kTrailingBytes);

  // A lying hop count in a RESULT payload (claims more hops than bytes).
  Result result;
  result.request_id = 1;
  auto lying = encode_frame(result);
  // hop_count is the last two bytes of the fixed Result prefix; bump it.
  REVTR_CHECK(lying.size() >= 2);
  lying[lying.size() - 1] = 0xff;
  // Re-stamp nothing else: payload length still matches the buffer, so the
  // decoder must fail on payload grounds, not length grounds.
  EXPECT_FALSE(decode_frame(lying, &error).has_value());
  EXPECT_EQ(error, FrameError::kBadPayload);
}

}  // namespace
}  // namespace revtr::server
