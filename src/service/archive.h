// Measurement archive (Appx A: "Our system archives both user-driven and
// NDT-based reverse traceroutes to M-Lab's Google Cloud storage").
//
// An append-only store of serialized reverse traceroutes with simple query
// support and NDJSON import/export — the shape a downstream consumer of the
// public dataset would read.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/revtr.h"
#include "core/serialize.h"
#include "util/sim_clock.h"

namespace revtr::service {

class MeasurementArchive {
 public:
  struct Entry {
    util::SimClock::Micros recorded_at = 0;
    core::ReverseTraceroute measurement;
  };

  struct Stats {
    std::size_t total = 0;
    std::size_t complete = 0;
    std::size_t aborted = 0;
    std::size_t unreachable = 0;
    std::size_t flagged = 0;  // Any trust flag set.
  };

  explicit MeasurementArchive(const topology::Topology& topo);

  void record(const core::ReverseTraceroute& measurement,
              util::SimClock::Micros at);

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  std::vector<const Entry*> by_source(topology::HostId source) const;
  std::vector<const Entry*> by_destination(
      topology::HostId destination) const;
  std::vector<const Entry*> since(util::SimClock::Micros cutoff) const;

  Stats stats() const;

  // One JSON document per line, each wrapped as
  // {"recorded_at_us": N, "measurement": {...}}.
  std::string export_ndjson() const;
  // Appends parseable lines; returns how many were imported (malformed
  // lines are skipped, not fatal — archives outlive code versions).
  std::size_t import_ndjson(std::string_view ndjson);

 private:
  const topology::Topology& topo_;
  std::vector<Entry> entries_;
};

}  // namespace revtr::service
