#include "service/archive.h"

namespace revtr::service {

MeasurementArchive::MeasurementArchive(const topology::Topology& topo)
    : topo_(topo) {}

void MeasurementArchive::record(const core::ReverseTraceroute& measurement,
                                util::SimClock::Micros at) {
  entries_.push_back(Entry{at, measurement});
}

std::vector<const MeasurementArchive::Entry*> MeasurementArchive::by_source(
    topology::HostId source) const {
  std::vector<const Entry*> matches;
  for (const auto& entry : entries_) {
    if (entry.measurement.source == source) matches.push_back(&entry);
  }
  return matches;
}

std::vector<const MeasurementArchive::Entry*>
MeasurementArchive::by_destination(topology::HostId destination) const {
  std::vector<const Entry*> matches;
  for (const auto& entry : entries_) {
    if (entry.measurement.destination == destination) {
      matches.push_back(&entry);
    }
  }
  return matches;
}

std::vector<const MeasurementArchive::Entry*> MeasurementArchive::since(
    util::SimClock::Micros cutoff) const {
  std::vector<const Entry*> matches;
  for (const auto& entry : entries_) {
    if (entry.recorded_at >= cutoff) matches.push_back(&entry);
  }
  return matches;
}

MeasurementArchive::Stats MeasurementArchive::stats() const {
  Stats stats;
  stats.total = entries_.size();
  for (const auto& entry : entries_) {
    switch (entry.measurement.status) {
      case core::RevtrStatus::kComplete:
        ++stats.complete;
        break;
      case core::RevtrStatus::kAbortedInterdomainSymmetry:
        ++stats.aborted;
        break;
      case core::RevtrStatus::kUnreachable:
        ++stats.unreachable;
        break;
    }
    if (entry.measurement.has_suspicious_gap ||
        entry.measurement.has_private_hops ||
        entry.measurement.used_stale_traceroute ||
        entry.measurement.dbr_suspect) {
      ++stats.flagged;
    }
  }
  return stats;
}

std::string MeasurementArchive::export_ndjson() const {
  std::string out;
  for (const auto& entry : entries_) {
    util::Json line = util::Json::object();
    line["recorded_at_us"] = entry.recorded_at;
    line["measurement"] = core::to_json(entry.measurement, topo_);
    out += line.dump();
    out.push_back('\n');
  }
  return out;
}

std::size_t MeasurementArchive::import_ndjson(std::string_view ndjson) {
  std::size_t imported = 0;
  std::size_t start = 0;
  while (start < ndjson.size()) {
    auto end = ndjson.find('\n', start);
    if (end == std::string_view::npos) end = ndjson.size();
    const auto line = ndjson.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const auto parsed = util::Json::parse(line);
    if (!parsed) continue;
    const auto* at = parsed->find("recorded_at_us");
    const auto* body = parsed->find("measurement");
    if (at == nullptr || !at->is_number() || body == nullptr) continue;
    const auto measurement =
        core::reverse_traceroute_from_json(*body, topo_);
    if (!measurement) continue;
    entries_.push_back(Entry{at->as_int(), *measurement});
    ++imported;
  }
  return imported;
}

}  // namespace revtr::service
