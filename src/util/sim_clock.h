// Simulated time for the measurement system.
//
// The paper's latency and throughput results (Fig 5c, §5.2.4) hinge on
// timing behaviour — most notably the 10-second timeout charged per batch of
// spoofed probes. Wall-clock waits would make the reproduction intractable,
// so all timing flows through a SimClock that subsystems advance explicitly
// (DESIGN.md §4.5).
#pragma once

#include <cstdint>

namespace revtr::util {

// Microsecond-resolution simulated clock.
class SimClock {
 public:
  using Micros = std::int64_t;

  static constexpr Micros kMillisecond = 1000;
  static constexpr Micros kSecond = 1000 * kMillisecond;
  static constexpr Micros kMinute = 60 * kSecond;
  static constexpr Micros kHour = 60 * kMinute;
  static constexpr Micros kDay = 24 * kHour;

  constexpr SimClock() noexcept = default;

  constexpr Micros now() const noexcept { return now_; }
  constexpr double now_seconds() const noexcept {
    return static_cast<double>(now_) / kSecond;
  }

  constexpr void advance(Micros delta) noexcept {
    if (delta > 0) now_ += delta;
  }
  constexpr void advance_seconds(double seconds) noexcept {
    advance(static_cast<Micros>(seconds * kSecond));
  }

  // Move the clock forward to an absolute instant (no-op if in the past).
  constexpr void advance_to(Micros instant) noexcept {
    if (instant > now_) now_ = instant;
  }

 private:
  Micros now_ = 0;
};

// A span of simulated time bracketing one measurement, for latency CDFs.
struct SimSpan {
  SimClock::Micros begin = 0;
  SimClock::Micros end = 0;

  constexpr SimClock::Micros duration() const noexcept { return end - begin; }
  constexpr double seconds() const noexcept {
    return static_cast<double>(duration()) / SimClock::kSecond;
  }
};

}  // namespace revtr::util
