// revtr-lint: repo-specific invariants that -Wall/-Wextra cannot express.
//
// Runs as a normal build target and as a ctest entry (`revtr_lint <repo
// root>`), so `ctest` alone enforces the rules. The checks are lexical: each
// file is stripped of comments and string/char literals first, so rule text
// inside documentation or log messages never trips a rule. A line can opt
// out of one rule with a trailing comment `lint:allow(<rule>)` — the marker
// is searched on the *raw* line, keeping suppressions greppable.
//
// Rules (see README.md "Correctness tooling" for how to add one):
//   raw-new-delete   Raw `new`/`delete` anywhere; owners use RAII
//                    (std::unique_ptr, containers). `= delete` is fine.
//   narrowing-cast   `static_cast` to a narrow integer type inside src/net/,
//                    the wire trust boundary; use util::checked_cast (abort
//                    on loss) or util::truncate_cast (intentional wrap).
//   header-hygiene   Every header under src/ carries `#pragma once` and
//                    lives in the `revtr` namespace.
//   std-endl         `std::endl` in src/ or bench/ (hot paths): it forces a
//                    flush per line; use '\n'.
//   layering         src/ include edges must follow the module DAG below:
//                    a module may include only strictly lower-ranked
//                    modules (or itself). Cycles are therefore impossible;
//                    a generic cycle detector still runs as a backstop.
//   enum-switch-default
//                    A switch in src/ whose cases name qualified
//                    enumerators (`case Foo::kBar:`) must not carry a
//                    `default:` label: it would swallow new enumerators
//                    that -Wswitch would otherwise force every switch to
//                    handle (pins HopSource/RevtrStatus exhaustiveness).
//   const-cast       `const_cast` anywhere in src/. Casting away const to
//                    mutate from a const accessor hid a data race in
//                    Distribution::quantile (lazy sort under readers) until
//                    TSan caught it; mutable members + a mutex make the
//                    sharing explicit. Genuinely const-adding casts are
//                    rare enough to justify a lint:allow(const-cast).
//   bare-output      `std::cout` or a bare `printf(` in src/: library code
//                    must not write to stdout — route data through the obs
//                    exporters (src/obs/) or return it to the caller.
//                    fprintf/snprintf stay legal (stderr diagnostics,
//                    formatting into buffers); tools/, tests/, bench/ and
//                    examples/ own their stdout and are exempt.
//   core-probe-issue Direct probe-issuing Prober calls (ping/rr_ping/
//                    ts_ping/traceroute) inside src/core/: the staged engine
//                    yields sched::ProbeDemand sets and all wire probes
//                    funnel through sched::execute_demand, so scheduler
//                    coalescing and pacing cannot be bypassed. Non-issuing
//                    Prober methods (offline_counters, OfflineScope) stay
//                    legal.
//
// Module DAG (rank order; an include edge must point strictly downward):
//   util(0) → net(1), obs(1) → topology(2) → routing(3) → sim(4)
//   → probing(5) → alias(6), asmap(6), sched(6) → atlas(7), vpselect(7)
//   → core(8) → analysis(9) → eval(10), service(10)
// tools/, tests/, bench/ and examples/ sit on top and may include anything.
//
// `revtr_lint --self-test` exercises both accept and reject paths of the
// layering and enum-switch rules on synthetic inputs; it is registered in
// ctest so the analyzer itself cannot silently rot.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;  // 0 = whole-file finding.
  std::string rule;
  std::string message;
};

bool has_extension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

bool is_source(const fs::path& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".h");
}

// Removes comments and the contents of string/char literals while keeping
// line structure, so later regex passes see only code. This is a lexer-level
// approximation (no raw strings in this codebase), which is exactly the
// fidelity a lexical linter wants: cheap and predictable.
std::string strip_comments_and_literals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);  // Unterminated; keep line numbers aligned.
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool allows(const std::string& raw_line, std::string_view rule) {
  const std::string marker = "lint:allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

// --- Layering. -------------------------------------------------------------

// The module DAG, as ranks. An include edge src/<A>/… → "<B>/…" is legal
// iff A == B or rank[B] < rank[A]. Adding a module under src/ requires
// adding it here, which forces a layering decision in review.
const std::map<std::string, int, std::less<>>& module_ranks() {
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"util", 0},  {"net", 1},      {"obs", 1},      {"topology", 2},
      {"routing", 3}, {"sim", 4},    {"probing", 5},  {"alias", 6},
      {"asmap", 6}, {"sched", 6},    {"atlas", 7},    {"vpselect", 7},
      {"core", 8},  {"analysis", 9}, {"eval", 10},    {"service", 10},
  };
  return kRanks;
}

// Module of a repo-relative path, or "" when the file is not under a
// src/<module>/ directory (tools, tests, bench sit above the DAG).
std::string module_of(const std::string& rel) {
  constexpr std::string_view kPrefix = "src/";
  if (rel.rfind(kPrefix, 0) != 0) return "";
  const std::size_t slash = rel.find('/', kPrefix.size());
  if (slash == std::string::npos) return "";
  return rel.substr(kPrefix.size(), slash - kPrefix.size());
}

// Generic cycle finder over the collected module graph. With strictly
// decreasing ranks a cycle cannot pass the rank check, so this only fires
// if the rank table itself is edited into an inconsistency — or in the
// self-test, which feeds it synthetic graphs.
std::optional<std::vector<std::string>> find_cycle(
    const std::set<std::pair<std::string, std::string>>& edges) {
  std::map<std::string, std::vector<std::string>> adjacent;
  for (const auto& [from, to] : edges) adjacent[from].push_back(to);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::optional<std::vector<std::string>> cycle;

  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const auto& next : adjacent[node]) {
          const Color c = color.count(next) ? color[next] : Color::kWhite;
          if (c == Color::kGray) {
            // Slice the stack from the first occurrence of `next`.
            std::vector<std::string> path;
            bool in_cycle = false;
            for (const auto& n : stack) {
              if (n == next) in_cycle = true;
              if (in_cycle) path.push_back(n);
            }
            path.push_back(next);
            cycle = std::move(path);
            return true;
          }
          if (c == Color::kWhite && visit(next)) return true;
        }
        stack.pop_back();
        color[node] = Color::kBlack;
        return false;
      };

  for (const auto& [from, to] : edges) {
    if (!color.count(from) && visit(from)) break;
  }
  return cycle;
}

// --- Switch scanning. ------------------------------------------------------

struct SwitchSpan {
  std::size_t keyword = 0;  // Position of the `switch` token.
  std::size_t open = 0;     // Its block's '{'.
  std::size_t close = 0;    // The matching '}'.
};

std::vector<SwitchSpan> find_switches(const std::string& code) {
  std::vector<SwitchSpan> out;
  static const std::regex kSwitch(R"(\bswitch\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kSwitch);
       it != std::sregex_iterator(); ++it) {
    SwitchSpan span;
    span.keyword = static_cast<std::size_t>(it->position());
    span.open = code.find('{', span.keyword);
    if (span.open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = span.open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    span.close = close;
    out.push_back(span);
  }
  return out;
}

// The switch body with nested switch statements excised, so an inner
// switch's `default:` cannot be attributed to the outer one.
std::string own_body(const std::string& code, const SwitchSpan& span,
                     const std::vector<SwitchSpan>& all) {
  std::string own;
  std::size_t i = span.open + 1;
  while (i < span.close) {
    bool skipped = false;
    for (const auto& nested : all) {
      if (nested.keyword == i && nested.open > span.open &&
          nested.close < span.close) {
        i = nested.close + 1;
        skipped = true;
        break;
      }
    }
    if (!skipped) own.push_back(code[i++]);
  }
  return own;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(relative_path(path), 0, "io", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lint_source(relative_path(path), buffer.str());
  }

  // The actual pass, separated from file IO so --self-test can feed
  // synthetic sources.
  void lint_source(const std::string& rel, const std::string& raw) {
    const std::string code = strip_comments_and_literals(raw);
    const auto raw_lines = split_lines(raw);
    const auto code_lines = split_lines(code);

    const bool in_net = rel.rfind("src/net/", 0) == 0;
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool in_hot = in_src || rel.rfind("bench/", 0) == 0;
    const std::string module = module_of(rel);

    if (in_src && has_extension(fs::path(rel), ".h")) check_header(rel, code);

    // clang-format off
    static const std::regex kRawNew(
        R"((^|[^\w.>])new\s+[\w:<(])");
    static const std::regex kRawDelete(
        R"((^|[^\w])delete(\s*\[\s*\])?\s+[\w:*(])");
    static const std::regex kNarrowingCast(
        R"(static_cast<\s*(std::)?(u?int(8|16|32)_t|(un)?signed\s+char|char|short|(un)?signed\s+short)\s*>)");
    static const std::regex kStdEndl(R"(std\s*::\s*endl)");
    static const std::regex kConstCast(R"(\bconst_cast\s*<)");
    static const std::regex kStdCout(R"(\bstd\s*::\s*cout\b)");
    // Bare printf only: the [^\w] guard keeps fprintf/snprintf/vsnprintf
    // legal, the optional std:: prefix catches <cstdio>'s qualified form.
    static const std::regex kBarePrintf(
        R"((^|[^\w])(std\s*::\s*)?printf\s*\()");
    // Probe-issuing Prober methods called on any identifier naming a prober
    // (prober_, engine_.prober_, a local `probing::Prober& prober`, ...).
    // Non-issuing members (offline_counters, counters) do not match.
    static const std::regex kProbeIssue(
        R"re((\b\w*[Pp]rober\w*\s*(\.|->)|\bProber\s*::\s*)(ping|rr_ping|ts_ping|traceroute)\s*\()re");
    // The stripper blanks string contents, so the include *path* must come
    // from the raw line; the stripped line still proves the directive is
    // not inside a comment.
    static const std::regex kIncludeStripped(R"(^\s*#\s*include\s*"")");
    static const std::regex kIncludeRaw(R"re(^\s*#\s*include\s*"([^"]+)")re");
    // clang-format on

    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& line = code_lines[i];
      const std::string& raw_line = i < raw_lines.size() ? raw_lines[i] : line;
      const std::size_t lineno = i + 1;

      if (std::regex_search(line, kRawNew) && !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw new; use std::make_unique or a container");
      }
      if (std::regex_search(line, kRawDelete) &&
          !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw delete; owners must use RAII");
      }
      if (in_net && std::regex_search(line, kNarrowingCast) &&
          !allows(raw_line, "narrowing-cast")) {
        report(rel, lineno, "narrowing-cast",
               "unchecked narrowing static_cast in src/net/; use "
               "util::checked_cast or util::truncate_cast");
      }
      if (in_hot && std::regex_search(line, kStdEndl) &&
          !allows(raw_line, "std-endl")) {
        report(rel, lineno, "std-endl",
               "std::endl flushes per line; use '\\n'");
      }
      if (in_src && std::regex_search(line, kConstCast) &&
          !allows(raw_line, "const-cast")) {
        report(rel, lineno, "const-cast",
               "const_cast in src/; mutation behind a const interface hides "
               "data races (see Distribution) — use mutable members with "
               "explicit synchronization");
      }
      if (in_src &&
          (std::regex_search(line, kStdCout) ||
           std::regex_search(line, kBarePrintf)) &&
          !allows(raw_line, "bare-output")) {
        report(rel, lineno, "bare-output",
               "bare stdout write in src/; library code returns data or "
               "exports it via src/obs/ — printing belongs to tools/");
      }
      if (module == "core" && std::regex_search(line, kProbeIssue) &&
          !allows(raw_line, "core-probe-issue")) {
        report(rel, lineno, "core-probe-issue",
               "direct probe-issuing Prober call in src/core/; the staged "
               "engine must yield a sched::ProbeDemand so the scheduler can "
               "coalesce and pace it (all wire probes funnel through "
               "sched::execute_demand)");
      }
      if (!module.empty() && std::regex_search(line, kIncludeStripped)) {
        std::smatch match;
        if (std::regex_search(raw_line, match, kIncludeRaw)) {
          check_include(rel, lineno, module, match[1].str(), raw_line);
        }
      }
    }

    if (in_src) check_switches(rel, code, raw_lines);
  }

  int finish() {
    // Backstop: a cycle among modules can only appear if the rank table is
    // edited into inconsistency, but it is cheap to prove there is none.
    if (const auto cycle = find_cycle(module_edges_)) {
      std::string path;
      for (const auto& node : *cycle) {
        if (!path.empty()) path += " -> ";
        path += node;
      }
      report("src", 0, "layering", "module include cycle: " + path);
    }
    if (violations_.empty()) {
      std::printf("revtr-lint: ok (%zu files)\n", files_checked_);
      return 0;
    }
    for (const auto& v : violations_) {
      if (v.line == 0) {
        std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                     v.message.c_str());
      } else {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
      }
    }
    std::fprintf(stderr, "revtr-lint: %zu violation(s) in %zu files\n",
                 violations_.size(), files_checked_);
    return 1;
  }

  void note_file() { ++files_checked_; }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void check_header(const std::string& rel, const std::string& code) {
    if (code.find("#pragma once") == std::string::npos) {
      report(rel, 0, "header-hygiene", "missing #pragma once");
    }
    static const std::regex kRevtrNamespace(R"(namespace\s+revtr\b)");
    if (!std::regex_search(code, kRevtrNamespace)) {
      report(rel, 0, "header-hygiene",
             "public header must declare the revtr namespace");
    }
  }

  void check_include(const std::string& rel, std::size_t lineno,
                     const std::string& module, const std::string& target,
                     const std::string& raw_line) {
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) return;  // Not a module-qualified path.
    const std::string to_module = target.substr(0, slash);
    if (to_module == module) return;
    module_edges_.insert({module, to_module});
    if (allows(raw_line, "layering")) return;

    const auto& ranks = module_ranks();
    const auto from_rank = ranks.find(module);
    const auto to_rank = ranks.find(to_module);
    if (from_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "module '" + module +
                 "' is not in the module DAG; add it to module_ranks() in "
                 "tools/revtr_lint.cpp");
      return;
    }
    if (to_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "included module '" + to_module + "' is not in the module DAG");
      return;
    }
    if (to_rank->second >= from_rank->second) {
      report(rel, lineno, "layering",
             "upward include: " + module + " (rank " +
                 std::to_string(from_rank->second) + ") must not include " +
                 to_module + " (rank " + std::to_string(to_rank->second) +
                 "); the module DAG is util -> net -> topology -> routing -> "
                 "sim -> probing -> alias/asmap/sched -> atlas/vpselect -> "
                 "core -> analysis -> eval/service");
    }
  }

  void check_switches(const std::string& rel, const std::string& code,
                      const std::vector<std::string>& raw_lines) {
    static const std::regex kEnumCase(R"(\bcase\s+\w+\s*::)");
    static const std::regex kDefaultLabel(R"(\bdefault\s*:)");
    const auto switches = find_switches(code);
    for (const auto& span : switches) {
      const std::string body = own_body(code, span, switches);
      if (!std::regex_search(body, kEnumCase) ||
          !std::regex_search(body, kDefaultLabel)) {
        continue;
      }
      const std::size_t lineno =
          1 + static_cast<std::size_t>(
                  std::count(code.begin(),
                             code.begin() + static_cast<long>(span.keyword),
                             '\n'));
      const std::string& raw_line =
          lineno - 1 < raw_lines.size() ? raw_lines[lineno - 1] : std::string();
      if (allows(raw_line, "enum-switch-default")) continue;
      report(rel, lineno, "enum-switch-default",
             "switch over an enum class has a default: label, which would "
             "swallow new enumerators; enumerate every case so -Wswitch "
             "stays exhaustive");
    }
  }

  std::string relative_path(const fs::path& path) const {
    return fs::relative(path, root_).generic_string();
  }

  void report(std::string file, std::size_t line, std::string rule,
              std::string message) {
    violations_.push_back(
        Violation{std::move(file), line, std::move(rule), std::move(message)});
  }

  fs::path root_;
  std::vector<Violation> violations_;
  std::set<std::pair<std::string, std::string>> module_edges_;
  std::size_t files_checked_ = 0;
};

// --- Self-test. ------------------------------------------------------------

int run_self_test() {
  std::size_t checks = 0;
  std::size_t failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    ++checks;
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "revtr-lint self-test FAIL: %s\n", what);
    }
  };
  const auto count_rule = [](const Linter& linter, std::string_view rule) {
    std::size_t n = 0;
    for (const auto& v : linter.violations()) {
      if (v.rule == rule) ++n;
    }
    return n;
  };

  {  // A downward include edge conforms to the DAG.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp", "#include \"atlas/atlas.h\"\n");
    expect(count_rule(linter, "layering") == 0, "downward include accepted");
  }
  {  // An artificially introduced upward include fails.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 1, "upward include rejected");
  }
  {  // Same-rank cross-module includes are upward edges too.
    Linter linter{fs::path(".")};
    linter.lint_source("src/alias/alias.cpp", "#include \"asmap/asmap.h\"\n");
    expect(count_rule(linter, "layering") == 1, "lateral include rejected");
  }
  {  // Intra-module includes are always fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/serialize.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "intra-module include accepted");
  }
  {  // A module missing from the rank table must be declared.
    Linter linter{fs::path(".")};
    linter.lint_source("src/newmod/thing.cpp", "#include \"util/rng.h\"\n");
    expect(count_rule(linter, "layering") == 1, "unknown module rejected");
  }
  {  // Commented-out includes do not create edges.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp",
                       "// #include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "commented include ignored");
  }
  {  // Suppression marker works for layering.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/rng.cpp",
        "#include \"core/revtr.h\"  // lint:allow(layering)\n");
    expect(count_rule(linter, "layering") == 0, "layering suppression honored");
  }
  {  // The generic cycle detector finds a 3-cycle and accepts a chain.
    const std::set<std::pair<std::string, std::string>> cyclic = {
        {"a", "b"}, {"b", "c"}, {"c", "a"}};
    expect(find_cycle(cyclic).has_value(), "3-cycle detected");
    const std::set<std::pair<std::string, std::string>> chain = {
        {"a", "b"}, {"b", "c"}};
    expect(!find_cycle(chain).has_value(), "acyclic chain accepted");
  }
  {  // default: in an enum-class switch is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 1,
           "enum switch with default flagged");
  }
  {  // A switch over plain values keeps its default.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(char c) {\n"
                       "  switch (c) {\n"
                       "    case 'a': return 1;\n"
                       "    default: return 0;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "non-enum switch with default accepted");
  }
  {  // An exhaustive enum switch without default is clean.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: return 1;\n"
                       "    case E::kB: return 2;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "exhaustive enum switch accepted");
  }
  {  // An inner char-switch default is not attributed to the outer
     // enum switch.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e, char c) {\n"
                       "  switch (e) {\n"
                       "    case E::kA:\n"
                       "      switch (c) {\n"
                       "        case 'x': return 1;\n"
                       "        default: return 2;\n"
                       "      }\n"
                       "    case E::kB: return 3;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "nested switch default not misattributed");
  }
  {  // Suppression marker works for the switch rule.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {  // lint:allow(enum-switch-default)\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "switch suppression honored");
  }
  {  // const_cast in src/ is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "void f(const T& t) {\n"
                       "  const_cast<T&>(t).mutate();\n"
                       "}\n");
    expect(count_rule(linter, "const-cast") == 1, "const_cast flagged");
  }
  {  // ...but a commented const_cast or one in tests/ is not.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "// const_cast<T&>(t) was the old racy approach\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto& m = const_cast<T&>(t);\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast scoped to src/ code");
  }
  {  // Suppression marker works for const-cast.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/stats.cpp",
        "auto& m = const_cast<T&>(t);  // lint:allow(const-cast)\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast suppression honored");
  }
  {  // std::cout and bare printf in src/ are flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp",
                       "void f() { std::cout << 1; }\n");
    linter.lint_source("src/atlas/atlas.cpp",
                       "void g() { printf(\"%d\", 1); }\n");
    linter.lint_source("src/sim/network.cpp",
                       "void h() { std::printf(\"x\"); }\n");
    expect(count_rule(linter, "bare-output") == 3,
           "std::cout / bare printf flagged in src/");
  }
  {  // fprintf(stderr) and snprintf stay legal; tools/ owns its stdout.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/check.cpp",
                       "void f() { fprintf(stderr, \"x\"); }\n");
    linter.lint_source("src/util/json.cpp",
                       "void g(char* b) { snprintf(b, 4, \"x\"); }\n");
    linter.lint_source("tools/revtr_cli.cpp",
                       "int h() { std::printf(\"ok\"); return 0; }\n");
    expect(count_rule(linter, "bare-output") == 0,
           "fprintf/snprintf and tools/ output accepted");
  }
  {  // Suppression marker works for bare-output.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/revtr.cpp",
        "std::cout << debug;  // lint:allow(bare-output)\n");
    expect(count_rule(linter, "bare-output") == 0,
           "bare-output suppression honored");
  }
  {  // obs sits at rank 1: usable from probing and above, barred from
     // reaching laterally into net.
    Linter linter{fs::path(".")};
    linter.lint_source("src/probing/prober.cpp",
                       "#include \"obs/metrics.h\"\n");
    expect(count_rule(linter, "layering") == 0, "probing -> obs accepted");
    Linter lateral{fs::path(".")};
    lateral.lint_source("src/obs/metrics.cpp", "#include \"net/ipv4.h\"\n");
    expect(count_rule(lateral, "layering") == 1, "obs -> net rejected");
  }
  {  // sched sits at rank 6: usable from core, barred from reaching up
     // into vpselect or core.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/request_task.cpp",
                       "#include \"sched/scheduler.h\"\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "#include \"probing/prober.h\"\n");
    expect(count_rule(linter, "layering") == 0,
           "core -> sched -> probing accepted");
    Linter upward{fs::path(".")};
    upward.lint_source("src/sched/scheduler.cpp",
                       "#include \"vpselect/ingress.h\"\n");
    upward.lint_source("src/sched/scheduler.h", "#include \"core/revtr.h\"\n");
    expect(count_rule(upward, "layering") == 2,
           "sched -> vpselect/core rejected");
  }
  {  // Probe-issuing Prober calls are barred from src/core/.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f() { prober_.rr_ping(a, b); }\n");
    linter.lint_source("src/core/y.cpp",
                       "void g() { engine_.prober_->traceroute(a, b); }\n");
    expect(count_rule(linter, "core-probe-issue") == 2,
           "direct probe call in src/core/ flagged");
  }
  {  // ...but the demand funnel, non-issuing members, and other modules
     // are fine.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "auto o = sched::execute_demand(prober_, demand);\n"
        "auto c = engine_.prober_.offline_counters();\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "auto r = prober.rr_ping(a, b, spoof);\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto r = prober.rr_ping(a, b);\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue scoped to issuing calls in src/core/");
  }
  {  // Suppression marker works for core-probe-issue.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "prober_.ping(a, b);  // lint:allow(core-probe-issue)\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue suppression honored");
  }
  {  // Outside src/, neither rule applies (tests may include anything and
     // keep defensive defaults).
    Linter linter{fs::path(".")};
    linter.lint_source("tests/x_test.cpp",
                       "#include \"core/revtr.h\"\n"
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(linter.violations().empty(), "rules scoped to src/");
  }

  if (failures != 0) {
    std::fprintf(stderr, "revtr-lint self-test: %zu/%zu checks failed\n",
                 failures, checks);
    return 1;
  }
  std::printf("revtr-lint self-test: ok (%zu checks)\n", checks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string_view(argv[1]) == "--self-test") {
    return run_self_test();
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: revtr_lint <repo-root> | --self-test\n");
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "revtr_lint: not a directory: %s\n", argv[1]);
    return 2;
  }

  Linter linter(root);
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !is_source(entry.path())) continue;
      linter.note_file();
      linter.lint_file(entry.path());
    }
  }
  return linter.finish();
}
