// IPv4 address and prefix value types.
//
// The whole reproduction is IPv4-only, like the paper (Record Route and
// Timestamp are IPv4 header options). Addresses are strongly typed wrappers
// around the host-order 32-bit value; prefixes pair an address with a length
// and normalize the host bits to zero.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/check.h"

namespace revtr::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr bool is_unspecified() const noexcept { return value_ == 0; }

  // RFC 1918 private space. Routers that stamp RR slots with private
  // addresses are one of the measurement artifacts the paper handles
  // (§5.2.2), so classification matters to the core algorithm.
  constexpr bool is_private() const noexcept {
    return (value_ & 0xff000000u) == 0x0a000000u ||   // 10.0.0.0/8
           (value_ & 0xfff00000u) == 0xac100000u ||   // 172.16.0.0/12
           (value_ & 0xffff0000u) == 0xc0a80000u;     // 192.168.0.0/16
  }
  constexpr bool is_loopback() const noexcept {
    return (value_ & 0xff000000u) == 0x7f000000u;     // 127.0.0.0/8
  }

  std::string to_string() const;
  static std::optional<Ipv4Addr> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;
  // Host bits below the prefix length are cleared.
  constexpr Ipv4Prefix(Ipv4Addr addr, std::uint8_t length) noexcept
      : addr_(Ipv4Addr(addr.value() & mask_for(length))),
        length_(length > 32 ? 32 : length) {}

  constexpr Ipv4Addr network() const noexcept { return addr_; }
  constexpr std::uint8_t length() const noexcept { return length_; }
  constexpr std::uint32_t mask() const noexcept { return mask_for(length_); }

  constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & mask()) == addr_.value();
  }
  constexpr bool contains(Ipv4Prefix other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  // Number of addresses covered (2^(32-len)); 2^32 saturates to uint64 max.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  constexpr Ipv4Addr first_host() const noexcept {
    // For /31 and /32 the network address itself is usable.
    return length_ >= 31 ? addr_ : Ipv4Addr(addr_.value() + 1);
  }

  // The i-th address inside the prefix (no bounds checking beyond size()).
  constexpr Ipv4Addr at(std::uint64_t i) const noexcept {
    REVTR_DCHECK(i < size());
    return Ipv4Addr(addr_.value() + util::truncate_cast<std::uint32_t>(i));
  }

  std::string to_string() const;
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0u
                       : ~std::uint32_t{0} << (32 - (length > 32 ? 32 : length));
  }

  Ipv4Addr addr_;
  std::uint8_t length_ = 0;
};

}  // namespace revtr::net

template <>
struct std::hash<revtr::net::Ipv4Addr> {
  std::size_t operator()(revtr::net::Ipv4Addr a) const noexcept {
    // splitmix-style avalanche; addresses are often sequential.
    std::uint64_t x = a.value();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <>
struct std::hash<revtr::net::Ipv4Prefix> {
  std::size_t operator()(revtr::net::Ipv4Prefix p) const noexcept {
    return std::hash<revtr::net::Ipv4Addr>{}(p.network()) * 31 + p.length();
  }
};
