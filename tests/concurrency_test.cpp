// Concurrency regression suite. Everything here is meant to run under TSan
// (scripts/check.sh builds the tsan preset and runs this binary): the tests
// exercise exactly the shared paths of a parallel campaign — the thread
// pool, the synchronized Distribution, the lock-striped caches — plus the
// end-to-end guarantee that a campaign's measurement set is independent of
// worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "service/parallel.h"
#include "util/stats.h"
#include "util/striped_map.h"
#include "util/thread_pool.h"

namespace revtr {
namespace {

using topology::HostId;

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, RunsEveryTaskAcrossWorkers) {
  util::ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&done] {
      const std::size_t w = util::ThreadPool::current_worker();
      EXPECT_LT(w, 4u);
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  util::ThreadPool pool(2);
  auto boom = pool.submit([]() -> int {
    throw std::runtime_error("probe batch failed");
  });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that threw must keep serving tasks.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // Destructor must wait for all 50, not just the running one.
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TinyQueueStillCompletesEverything) {
  // Capacity 1 forces submitters to block on the not-full condition; every
  // task must still run exactly once.
  util::ThreadPool pool(2, /*queue_capacity=*/1);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, CurrentWorkerOutsidePoolIsSentinel) {
  EXPECT_EQ(util::ThreadPool::current_worker(), util::ThreadPool::kNotAWorker);
}

// Shutdown racing a submitter parked on a full queue: the destructor's
// shutdown broadcast must wake the blocked submitter into a throw, not a
// deadlock (submitter waiting on not_full_ forever, destructor waiting on
// join) and not a process abort.
TEST(ThreadPool, ShutdownWhileQueueFullThrowsInsteadOfDeadlocking) {
  std::atomic<bool> release{false};
  std::atomic<bool> submitter_threw{false};
  std::atomic<bool> submitter_parked{false};
  auto pool = std::make_unique<util::ThreadPool>(1, /*queue_capacity=*/1);

  // Occupy the single worker until released...
  pool->submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // ...and fill the one queue slot behind it.
  auto queued = pool->submit([] {});

  // The submitter must not read the unique_ptr itself once the destroyer
  // starts reset()ing it — only the pool object, whose destructor cannot
  // finish while the worker is pinned on `release`.
  util::ThreadPool& pool_ref = *pool;
  std::thread submitter([&pool_ref, &submitter_threw, &submitter_parked] {
    submitter_parked.store(true, std::memory_order_release);
    try {
      // Queue is full: this blocks on not_full_ until shutdown wakes it.
      pool_ref.submit([] {});
    } catch (const std::runtime_error&) {
      submitter_threw.store(true, std::memory_order_release);
    }
  });
  while (!submitter_parked.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Give the submitter time to actually park inside submit().
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The worker is still pinned on `release`, so the queue slot cannot free
  // up: the only thing that can wake the parked submitter is the
  // destructor's shutdown broadcast, and it must wake into a throw.
  std::thread destroyer([&pool] { pool.reset(); });
  submitter.join();
  EXPECT_TRUE(submitter_threw.load());
  // Now let the worker finish so the destructor can drain and join.
  release.store(true, std::memory_order_release);
  destroyer.join();
  queued.get();  // Work queued before shutdown is never dropped.

  // And an unambiguous post-shutdown submit on a live-then-dead pool also
  // throws rather than aborting (can't test after reset; recreate).
  util::ThreadPool fresh(1);
  auto ok = fresh.submit([] { return 3; });
  EXPECT_EQ(ok.get(), 3);
}

// --- Distribution (the const_cast data race, fixed) ----------------------

// Regression for the ensure_sorted const_cast: quantile() used to sort the
// sample vector through a const_cast with no synchronization, so a reader
// racing a writer corrupted the vector. Under TSan this test fails on the
// old code; on any build it must not crash and must keep counts exact.
TEST(DistributionConcurrency, ReaderRacingWriterIsSafe) {
  util::Distribution dist;
  constexpr int kSamples = 20000;
  std::thread writer([&dist] {
    for (int i = 0; i < kSamples; ++i) dist.add(i);
  });
  std::thread reader([&dist] {
    for (int i = 0; i < 2000; ++i) {
      const double q = dist.quantile(0.5);
      EXPECT_GE(q, 0.0);
      EXPECT_GE(dist.cdf_at(static_cast<double>(kSamples)), 0.0);
      (void)dist.mean();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(dist.count(), static_cast<std::size_t>(kSamples));
  EXPECT_DOUBLE_EQ(dist.max(), kSamples - 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
}

TEST(DistributionConcurrency, TwoQuantileReadersShareSafely) {
  // Two pure readers both trigger the lazy sort; the old code let them sort
  // the same vector simultaneously.
  util::Distribution dist;
  for (int i = 5000; i-- > 0;) dist.add(i);
  std::thread a([&dist] {
    for (int i = 0; i < 3000; ++i) (void)dist.quantile(0.9);
  });
  std::thread b([&dist] {
    for (int i = 0; i < 3000; ++i) (void)dist.median();
  });
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(dist.median(), 2499.5);
}

// --- StripedMap ----------------------------------------------------------

TEST(StripedMap, ConcurrentInsertAndLookup) {
  util::StripedMap<std::vector<int>> map;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto key =
            static_cast<std::uint64_t>(t) * kPerThread + static_cast<std::uint64_t>(i);
        map.insert_or_assign(key, std::vector<int>{t, i});
        // Read back own writes and probe other threads' keys.
        const auto mine = map.lookup(key);
        ASSERT_TRUE(mine.has_value());
        EXPECT_EQ((*mine)[0], t);
        (void)map.lookup(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  const auto probe = map.lookup(3 * kPerThread + 17);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ((*probe)[1], 17);
}

// Writers hammer a deliberately small overlapping key range so every stripe's
// FlatMap sees concurrent overwrites AND growth-triggered rehashes while
// readers walk the same stripes under shared locks. TSan validates that the
// stripe locks fully cover the flat tables' internal mutation (rehash moves
// every slot, backward pressure on the same cache lines readers scan).
TEST(StripedMap, OverlappingChurnWithConcurrentReaders) {
  util::StripedMap<std::uint64_t> map;
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kKeySpace = 512;  // Small => same-stripe collisions.
  constexpr int kOpsPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const auto key = static_cast<std::uint64_t>(i) % kKeySpace;
        map.insert_or_assign(key, static_cast<std::uint64_t>(t) << 32 |
                                      static_cast<std::uint64_t>(i));
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&map, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::uint64_t key = 0; key < kKeySpace; ++key) {
          const auto value = map.lookup(key);
          if (value.has_value()) {
            // Values are (writer << 32 | op); op stays within bounds.
            EXPECT_LT(*value & 0xffffffffu,
                      static_cast<std::uint64_t>(kOpsPerWriter));
          }
          (void)map.contains(key);
        }
        (void)map.size();
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  // Every key in the space was written by every writer; the last write of
  // some writer won each slot, so all keys must be present.
  EXPECT_EQ(map.size(), kKeySpace);
  for (std::uint64_t key = 0; key < kKeySpace; ++key) {
    EXPECT_TRUE(map.contains(key)) << key;
  }
}

// --- Sharded metrics ------------------------------------------------------

// Pool workers and non-pool threads hammer the same counter cells; the
// merged total must equal the number of adds. TSan validates that the
// relaxed per-shard atomics really are race-free.
TEST(ShardedMetrics, ConcurrentCounterAddsMergeExactly) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("revtr_test_adds_total");
  constexpr int kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 5000;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&counter] {
        for (std::uint64_t i = 0; i < kAddsPerTask; ++i) counter.add();
      }));
    }
    // A non-pool writer exercises shard 0 concurrently with the workers.
    std::thread outsider([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerTask; ++i) counter.add(2);
    });
    for (auto& f : futures) f.get();
    outsider.join();
  }
  EXPECT_EQ(counter.total(), (kTasks + 2) * kAddsPerTask);
}

TEST(ShardedMetrics, ConcurrentHistogramRecordsMergeExactly) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("revtr_test_latency_us");
  constexpr int kTasks = 32;
  constexpr std::uint64_t kSamplesPerTask = 2000;
  std::uint64_t want_sum = 0;
  for (std::uint64_t i = 0; i < kSamplesPerTask; ++i) want_sum += i * 7;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&hist] {
        for (std::uint64_t i = 0; i < kSamplesPerTask; ++i) hist.record(i * 7);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(hist.count(), kTasks * kSamplesPerTask);
  EXPECT_EQ(hist.sum(), static_cast<std::uint64_t>(kTasks) * want_sum);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

// Snapshots (the campaign's merge-at-barrier) run concurrently with
// writers and with get-or-create registration of fresh names. Mid-run
// snapshot values are racy by design; the invariants are: no TSan report,
// handles are stable, and the final merged totals are exact.
TEST(ShardedMetrics, SnapshotAndRegistrationDuringConcurrentWrites) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("revtr_test_probes_total");
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snapshot = registry.snapshot();
      EXPECT_GE(snapshot.counters.size(), 1u);
    }
  });
  constexpr int kTasks = 32;
  constexpr std::uint64_t kAddsPerTask = 3000;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&registry, &counter, t] {
        // Same-name registration from many threads must converge on one cell.
        obs::Counter& again = registry.counter("revtr_test_probes_total");
        EXPECT_EQ(&again, &counter);
        obs::Gauge& mine = registry.gauge(
            "revtr_test_worker_gauge{worker=\"" + std::to_string(t % 4) +
            "\"}");
        mine.set(t);
        for (std::uint64_t i = 0; i < kAddsPerTask; ++i) again.add();
      }));
    }
    for (auto& f : futures) f.get();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(counter.total(), kTasks * kAddsPerTask);
  EXPECT_EQ(registry.size(), 1u + 4u);  // Counter + one gauge per worker id.
}

// --- TracerouteAtlas (refresh racing readers, fixed) ----------------------

// Regression for the atlas refresh-vs-read race: refresh() clears and
// re-measures a source's traceroute vector in place, and the old accessors
// handed out references into that vector, so a reader racing the daily
// refresh walked freed hop storage. Under TSan the old code reports here;
// the fix serializes content access through the per-source stripe and
// returns snapshots by value (atlas.h).
TEST(AtlasConcurrency, RefreshRacingReadersIsSafe) {
  topology::TopologyConfig config;
  config.seed = 77;
  config.num_ases = 150;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 50;
  eval::Lab lab(config);
  const HostId source = lab.topo.vantage_points()[0];
  static constexpr std::size_t kAtlasSize = 25;
  lab.atlas.build(source, kAtlasSize, lab.rng);
  lab.atlas.build_rr_alias_index(source);
  // Probe the initial snapshot's hop addresses: refresh keeps re-measuring
  // over them, so lookups keep hitting live and stale entries alike.
  std::vector<net::Ipv4Addr> addrs;
  for (const auto& tr : lab.atlas.traceroutes(source)) {
    for (const auto hop : tr.hops) addrs.push_back(hop);
  }
  ASSERT_FALSE(addrs.empty());

  std::atomic<bool> stop{false};
  // The Prober is not thread-safe: only the refresher thread measures.
  std::thread refresher([&lab, &stop, source] {
    util::Rng rng(123);
    for (int round = 1; round <= 6; ++round) {
      lab.atlas.refresh(source, rng, round * util::SimClock::kDay);
      lab.atlas.build_rr_alias_index(source);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&lab, &stop, &addrs, source] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto addr = addrs[i++ % addrs.size()];
        if (const auto hit = lab.atlas.intersect(source, addr, true)) {
          // A stale hit must degrade to an empty suffix, never a crash.
          (void)lab.atlas.suffix_after(source, *hit);
          (void)lab.atlas.touch(source, *hit, util::SimClock::kDay);
        }
        EXPECT_EQ(lab.atlas.traceroute_count(source), kAtlasSize);
        (void)lab.atlas.rr_index_size(source);
        // Snapshots stay internally consistent mid-refresh: right size,
        // every traceroute measured (refresh rewrites them in one critical
        // section, so a half-refreshed vector must never be visible).
        const auto snapshot = lab.atlas.traceroutes(source);
        EXPECT_EQ(snapshot.size(), kAtlasSize);
        for (const auto& tr : snapshot) {
          EXPECT_NE(tr.probe, topology::kInvalidId);
        }
      }
    });
  }
  refresher.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(lab.atlas.traceroute_count(source), kAtlasSize);
}

// --- IngressDiscovery (re-survey racing plan readers, fixed) ---------------

// Regression for the ingress plan rebuild-vs-read race revtr_lint's
// guard-escape pass flagged: discover() used to rebuild a prefix's
// PrefixPlan in place inside the guarded map and both it and plan_for()
// handed out references into that map, so a campaign worker reading a plan
// raced a concurrent re-survey of the same prefix. The fix builds each
// survey into a fresh shared_ptr<const PrefixPlan> and swaps the map entry,
// so an earlier snapshot stays internally consistent however many
// re-surveys land after it. Under TSan the old code reports here.
TEST(IngressConcurrency, RediscoveryRacingPlanReadersIsSafe) {
  topology::TopologyConfig config;
  config.seed = 83;
  config.num_ases = 150;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 50;
  eval::Lab lab(config);
  const auto prefixes = lab.customer_prefixes();
  ASSERT_FALSE(prefixes.empty());
  const auto prefix = prefixes[0];
  const auto vps = lab.topo.vantage_points();
  const auto first = lab.ingress.discover(prefix, vps, lab.rng);
  ASSERT_NE(first, nullptr);
  const std::size_t first_vps = first->vp_info.size();
  const std::size_t first_ingresses = first->ingresses.size();

  std::atomic<bool> stop{false};
  // The Prober is not thread-safe: only the surveyor thread re-discovers.
  std::thread surveyor([&lab, &stop, prefix, vps] {
    util::Rng rng(321);
    for (int round = 0; round < 6; ++round) {
      (void)lab.ingress.discover(prefix, vps, rng);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back(
        [&lab, &stop, &first, prefix, first_vps, first_ingresses] {
          while (!stop.load(std::memory_order_acquire)) {
            // The pre-survey snapshot never changes under re-discovery.
            EXPECT_EQ(first->vp_info.size(), first_vps);
            EXPECT_EQ(first->ingresses.size(), first_ingresses);
            (void)first->fallback_ranking();
            // plan_for hands out some complete survey (old or new), never
            // a half-built plan.
            const auto current = lab.ingress.plan_for(prefix);
            ASSERT_NE(current, nullptr);
            EXPECT_EQ(current->prefix, prefix);
            (void)vpselect::attempt_plan(*current);
          }
        });
  }
  surveyor.join();
  for (auto& t : readers) t.join();
}

// --- ParallelCampaignDriver ----------------------------------------------

class ParallelCampaignTest : public ::testing::Test {
 protected:
  static topology::TopologyConfig small_config() {
    topology::TopologyConfig config;
    config.seed = 91;
    config.num_ases = 150;
    config.num_vps = 10;
    config.num_vps_2016 = 4;
    config.num_probe_hosts = 40;
    return config;
  }

  void SetUp() override {
    lab_ = std::make_unique<eval::Lab>(small_config());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 30);
    const auto dests = lab_->responsive_destinations(true);
    for (std::size_t i = 0; i < 16 && i < dests.size(); ++i) {
      pairs_.emplace_back(dests[i], source_);
    }
    ASSERT_GE(pairs_.size(), 8u);
  }

  service::CampaignDeps deps() {
    return {lab_->topo,  lab_->plane, lab_->atlas,
            lab_->ingress, lab_->ip2as, lab_->relationships};
  }

  service::ParallelCampaignReport run_with(
      std::size_t workers, bool use_cache = true,
      service::EngineMode mode = service::EngineMode::kBlocking,
      bool coalesce = true) {
    service::ParallelCampaignOptions options;
    options.workers = workers;
    options.seed = 7;
    options.engine.use_cache = use_cache;
    options.mode = mode;
    options.sched.coalesce = coalesce;
    service::ParallelCampaignDriver driver(deps(), options);
    return driver.run(pairs_);
  }

  // The measurement identity the driver promises is worker-count-invariant:
  // endpoints, status, and the exact hop sequence (address + provenance).
  static std::string signature(const core::ReverseTraceroute& r) {
    std::string s = std::to_string(r.destination) + ">" +
                    std::to_string(r.source) + ":" + core::to_string(r.status);
    for (const auto& hop : r.hops) {
      s += "|" + hop.addr.to_string() + "/" + core::to_string(hop.source);
    }
    return s;
  }

  std::unique_ptr<eval::Lab> lab_;
  HostId source_ = topology::kInvalidId;
  std::vector<std::pair<HostId, HostId>> pairs_;
};

TEST_F(ParallelCampaignTest, MatchesSingleThreadedMeasurements) {
  const auto solo = run_with(1);
  const auto fleet = run_with(3);
  ASSERT_EQ(solo.results.size(), pairs_.size());
  ASSERT_EQ(fleet.results.size(), pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_EQ(signature(solo.results[i]), signature(fleet.results[i]))
        << "request " << i << " measured differently on 3 workers";
  }
  EXPECT_EQ(solo.stats.completed, fleet.stats.completed);
  EXPECT_EQ(solo.stats.aborted, fleet.stats.aborted);
  EXPECT_EQ(solo.stats.unreachable, fleet.stats.unreachable);
}

TEST_F(ParallelCampaignTest, SharedCacheDoesNotChangeResults) {
  const auto cold = run_with(2, /*use_cache=*/false);
  const auto warm = run_with(2, /*use_cache=*/true);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_EQ(signature(cold.results[i]), signature(warm.results[i]))
        << "cache changed the outcome of request " << i;
  }
  // Caching can only save probes, never spend more.
  EXPECT_LE(warm.stats.probes.total(), cold.stats.probes.total());
}

TEST_F(ParallelCampaignTest, MergedStatsAreConsistent) {
  const auto report = run_with(4);
  const auto& stats = report.stats;
  EXPECT_EQ(stats.requested, pairs_.size());
  EXPECT_EQ(stats.completed + stats.aborted + stats.unreachable,
            pairs_.size());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.latency_seconds.count(), pairs_.size());
  EXPECT_GT(stats.probes.total(), 0u);
  ASSERT_EQ(report.worker_busy_seconds.size(), 4u);
  double busy_sum = 0;
  double busiest = 0;
  for (const double b : report.worker_busy_seconds) {
    busy_sum += b;
    busiest = std::max(busiest, b);
  }
  EXPECT_NEAR(stats.busy_seconds, busy_sum, 1e-9);
  EXPECT_NEAR(stats.duration_seconds, busiest, 1e-9);
  EXPECT_LE(stats.duration_seconds, stats.busy_seconds + 1e-9);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(stats.processed_per_second(), 0.0);
  EXPECT_GE(stats.processed_per_second(), stats.completed_per_second());
}

// The tentpole equivalence: the staged scheduler-driven engine must measure
// the exact same paths as the blocking engine, for every worker count, with
// coalescing on or off. Probe *accounting* may differ under coalescing (a
// coalesced demand moves to coalesced_probes instead of the issued-probe
// counters); with coalescing off even the probe counters must match.
TEST_F(ParallelCampaignTest, StagedMatchesBlockingAcrossWorkersAndCoalescing) {
  // Caches off for the strict comparison: with the shared cache on, probe
  // totals are legitimately schedule-dependent (staged admits every request
  // before the cache warms; blocking warms it request by request), exactly
  // as they already are between blocking worker counts.
  const auto blocking = run_with(1, /*use_cache=*/false);
  ASSERT_EQ(blocking.results.size(), pairs_.size());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const bool coalesce : {true, false}) {
      const auto staged = run_with(workers, /*use_cache=*/false,
                                   service::EngineMode::kStaged, coalesce);
      ASSERT_EQ(staged.results.size(), pairs_.size());
      ASSERT_TRUE(staged.sched.has_value());
      for (std::size_t i = 0; i < pairs_.size(); ++i) {
        const auto& b = blocking.results[i];
        const auto& s = staged.results[i];
        EXPECT_EQ(signature(b), signature(s))
            << "request " << i << " diverged (workers=" << workers
            << " coalesce=" << coalesce << ")";
        EXPECT_EQ(b.spoofed_batches, s.spoofed_batches) << "request " << i;
        EXPECT_EQ(b.symmetry_assumptions, s.symmetry_assumptions)
            << "request " << i;
        if (coalesce) {
          // Coalescing can only save a request probes, never spend more.
          EXPECT_LE(s.probes.total(), b.probes.total()) << "request " << i;
        } else {
          // Without coalescing every demand issues: accounting must be
          // byte-identical to the blocking engine.
          EXPECT_EQ(s.probes.total(), b.probes.total()) << "request " << i;
          EXPECT_EQ(s.coalesced_probes, 0u) << "request " << i;
        }
      }
      EXPECT_EQ(blocking.stats.completed, staged.stats.completed);
      EXPECT_EQ(blocking.stats.aborted, staged.stats.aborted);
      EXPECT_EQ(blocking.stats.unreachable, staged.stats.unreachable);
      // Every demand is accounted exactly once: issued, coalesced, or (not
      // in a campaign — plans are precomputed) an offline job.
      EXPECT_EQ(staged.sched->demanded,
                staged.sched->issued + staged.sched->coalesced);
    }
  }
  // With the shared cache on, the measurement *set* must still be mode-
  // invariant even though probe accounting shifts with replay scheduling.
  const auto warm_blocking = run_with(1);
  const auto warm_staged =
      run_with(2, /*use_cache=*/true, service::EngineMode::kStaged);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_EQ(signature(warm_blocking.results[i]),
              signature(warm_staged.results[i]))
        << "request " << i << " diverged with warm caches";
  }
}

// Blocking mode must never report coalesced probes: the field exists so the
// service can refund them, and the blocking path issues every demand itself.
TEST_F(ParallelCampaignTest, BlockingModeReportsNoCoalescedProbes) {
  const auto report = run_with(2);
  EXPECT_FALSE(report.sched.has_value());
  for (const auto& result : report.results) {
    EXPECT_EQ(result.coalesced_probes, 0u);
  }
}

// Duplicate-heavy workload: many requests over few destinations. The staged
// scheduler must recognize the identical in-flight demands and answer them
// with shared wire probes, and the per-request/coalesced accounting must
// reconcile exactly with the scheduler's own counters.
TEST_F(ParallelCampaignTest, StagedCoalescesDuplicateDemands) {
  std::vector<std::pair<HostId, HostId>> dup_pairs;
  for (std::size_t i = 0; i < 24; ++i) {
    dup_pairs.emplace_back(pairs_[i % 3].first, source_);
  }
  service::ParallelCampaignOptions options;
  options.workers = 4;
  options.seed = 7;
  // Cache off: replay would otherwise hide duplicates from the scheduler.
  options.engine.use_cache = false;
  options.mode = service::EngineMode::kStaged;
  service::ParallelCampaignDriver driver(deps(), options);
  const auto report = driver.run(dup_pairs);

  ASSERT_TRUE(report.sched.has_value());
  EXPECT_GT(report.sched->coalesced, 0u);
  EXPECT_LT(report.sched->issued, report.sched->demanded);
  std::uint64_t charged = 0;
  std::uint64_t coalesced = 0;
  for (const auto& result : report.results) {
    charged += result.probes.total();
    coalesced += result.coalesced_probes;
  }
  // Wire probes all land in some worker's prober; merged counters must see
  // exactly the probes the requests charged themselves — no more, no less.
  EXPECT_EQ(charged, report.stats.probes.total());
  EXPECT_EQ(coalesced, report.sched->coalesced);
  // All 24 requests are the same 3 measurements.
  for (std::size_t i = 3; i < dup_pairs.size(); ++i) {
    EXPECT_EQ(signature(report.results[i]), signature(report.results[i % 3]));
  }
}

// Cache replay racing an in-flight duplicate: with the lock-striped
// EngineCaches shared across staged workers, one request's rr-cache insert
// races another's lookup of the same key while a third holds the identical
// demand in the scheduler. TSan (scripts/check.sh) validates the striping;
// the measurement set must stay worker-count-invariant throughout.
TEST(StripedMapEngineCaches, ReplayHitRacesInFlightDuplicate) {
  topology::TopologyConfig config;
  config.seed = 91;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 40;
  eval::Lab lab(config);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 30);
  const auto dests = lab.responsive_destinations(true);
  ASSERT_GE(dests.size(), 4u);
  std::vector<std::pair<HostId, HostId>> pairs;
  for (std::size_t i = 0; i < 32; ++i) {
    pairs.emplace_back(dests[i % 4], source);
  }
  service::CampaignDeps deps{lab.topo,    lab.plane, lab.atlas,
                             lab.ingress, lab.ip2as, lab.relationships};
  service::ParallelCampaignOptions options;
  options.workers = 4;
  options.seed = 11;
  options.engine.use_cache = true;  // Shared striped caches on the hot path.
  options.mode = service::EngineMode::kStaged;
  service::ParallelCampaignDriver staged_driver(deps, options);
  const auto staged = staged_driver.run(pairs);

  options.mode = service::EngineMode::kBlocking;
  options.workers = 1;
  service::ParallelCampaignDriver blocking_driver(deps, options);
  const auto blocking = blocking_driver.run(pairs);

  ASSERT_EQ(staged.results.size(), blocking.results.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(blocking.results[i].status, staged.results[i].status);
    ASSERT_EQ(blocking.results[i].hops.size(), staged.results[i].hops.size())
        << "request " << i;
    for (std::size_t h = 0; h < blocking.results[i].hops.size(); ++h) {
      EXPECT_EQ(blocking.results[i].hops[h].addr,
                staged.results[i].hops[h].addr);
    }
  }
}

TEST_F(ParallelCampaignTest, PacingHoldsWorkerSlots) {
  service::ParallelCampaignOptions options;
  options.workers = 2;
  options.seed = 7;
  options.pacing_scale = 1e-4;
  service::ParallelCampaignDriver driver(deps(), options);
  const auto report = driver.run(pairs_);
  // Each request held its slot for latency * scale real seconds; with two
  // workers the wall clock must cover at least half the total hold time.
  EXPECT_GE(report.wall_seconds,
            options.pacing_scale * report.stats.busy_seconds / 2 * 0.5);
}

}  // namespace
}  // namespace revtr
