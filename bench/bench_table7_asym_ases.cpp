// Table 7 + Fig 8(b): which ASes are most involved in path asymmetry, as a
// function of their customer cone size (§6.2).
//
// An AS is "part of an observed asymmetry" for a pair when it appears on
// exactly one direction's AS path. Paper: tier-1s and other large-cone
// transit networks dominate, but NRENs (small cones, wide peering) are
// disproportionately present — the top-left cluster of Fig 8(b).
#include <algorithm>
#include <cstdio>
#include <map>

#include "asymmetry.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 7 / Fig 8b: ASes most involved in asymmetry",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto campaign = bench::run_asymmetry_campaign(lab, setup);

  std::size_t asymmetric_pairs = 0;
  std::map<topology::Asn, std::size_t> involvement;
  for (const auto& pair : campaign.pairs) {
    if (pair.forward_as == pair.reverse_as) continue;
    ++asymmetric_pairs;
    // ASes present in exactly one direction.
    for (const auto asn : pair.forward_as) {
      if (std::find(pair.reverse_as.begin(), pair.reverse_as.end(), asn) ==
          pair.reverse_as.end()) {
        ++involvement[asn];
      }
    }
    for (const auto asn : pair.reverse_as) {
      if (std::find(pair.forward_as.begin(), pair.forward_as.end(), asn) ==
          pair.forward_as.end()) {
        ++involvement[asn];
      }
    }
  }
  std::printf("asymmetric pairs: %zu of %zu complete\n\n", asymmetric_pairs,
              campaign.pairs.size());
  if (asymmetric_pairs == 0) return 0;

  struct Row {
    topology::Asn asn;
    double prevalence;
    std::size_t cone;
    std::string category;
  };
  std::vector<Row> rows;
  for (const auto& [asn, count] : involvement) {
    Row row;
    row.asn = asn;
    row.prevalence = static_cast<double>(count) /
                     static_cast<double>(asymmetric_pairs);
    row.cone = lab.relationships.customer_cone_size(asn);
    const auto& node = lab.topo.as_node(asn);
    row.category = topology::to_string(node.tier) + "/" +
                   topology::to_string(node.category);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.prevalence > b.prevalence;
  });

  util::TextTable table(
      {"Rank", "ASN", "Prevalence", "Customer cone", "Tier/category"});
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    table.add_row({std::to_string(i + 1), std::to_string(rows[i].asn),
                   util::cell(rows[i].prevalence, 3),
                   util::cell_count(rows[i].cone), rows[i].category});
  }
  std::printf("%s\n", table.render().c_str());

  // Fig 8b scatter: prevalence vs cone size, one point per involved AS.
  util::Series scatter;
  scatter.name = "AS (x=cone size, y=prevalence)";
  util::Series nren_scatter;
  nren_scatter.name = "NREN (x=cone size, y=prevalence)";
  for (const auto& row : rows) {
    auto& target = lab.topo.as_node(row.asn).category ==
                           topology::AsCategory::kNren
                       ? nren_scatter
                       : scatter;
    target.xs.push_back(static_cast<double>(row.cone));
    target.ys.push_back(row.prevalence);
  }
  std::printf("%s\n",
              util::render_figure("Fig 8b: asymmetry involvement vs cone",
                                  {scatter, nren_scatter}, 4)
                  .c_str());

  // NREN over-representation summary: mean prevalence normalized by cone.
  double nren_prev = 0, other_prev = 0;
  std::size_t nren_n = 0, other_n = 0;
  for (const auto& row : rows) {
    if (lab.topo.as_node(row.asn).category == topology::AsCategory::kNren) {
      nren_prev += row.prevalence;
      ++nren_n;
    } else if (row.cone <= 10) {
      other_prev += row.prevalence;
      ++other_n;
    }
  }
  if (nren_n > 0 && other_n > 0) {
    std::printf(
        "small-cone prevalence: NRENs %.4f vs other small ASes %.4f "
        "(paper: NRENs disproportionately present)\n",
        nren_prev / static_cast<double>(nren_n),
        other_prev / static_cast<double>(other_n));
  }
  return 0;
}
