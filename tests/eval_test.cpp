#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/metrics.h"

namespace revtr::eval {
namespace {

using net::Ipv4Addr;
using topology::Asn;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 95;
  config.num_ases = 120;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 30;
  return config;
}

// --------------------------------------------------------------------------
// HopMatcher
// --------------------------------------------------------------------------

TEST(HopMatcher, ExactAndP2p) {
  const HopMatcher matcher(nullptr, nullptr);
  EXPECT_TRUE(matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 1)));
  // Opposite ends of a /30: the point-to-point rule of Appx B.1.
  EXPECT_TRUE(matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2)));
  EXPECT_FALSE(
      matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1)));
}

TEST(HopMatcher, P2pCanBeDisabled) {
  MatcherOptions options;
  options.use_p2p_heuristic = false;
  const HopMatcher matcher(nullptr, nullptr, options);
  EXPECT_FALSE(
      matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2)));
}

TEST(HopMatcher, AliasStoreConsulted) {
  alias::AliasStore store;
  store.add_pair(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(9, 0, 0, 9));
  const HopMatcher matcher(&store, nullptr);
  EXPECT_TRUE(matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(9, 0, 0, 9)));
  EXPECT_FALSE(
      matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(8, 0, 0, 8)));
}

TEST(HopMatcher, OptimisticCountsUnresolvable) {
  MatcherOptions options;
  options.optimistic = true;
  const HopMatcher matcher(nullptr, nullptr, options);
  // Two unrelated addresses with no alias knowledge: optimistic mode gives
  // them the benefit of the doubt (upper bound of Fig 5a).
  EXPECT_TRUE(matcher.same_router(Ipv4Addr(1, 0, 0, 1), Ipv4Addr(8, 0, 0, 8)));
}

TEST(HopMatcher, SnmpIdentifiersMatch) {
  eval::Lab lab(small_config());
  const alias::SnmpResolver snmp(lab.topo);
  const HopMatcher matcher(nullptr, &snmp);
  for (const auto& router : lab.topo.routers()) {
    if (!router.snmp_responder || router.links.empty()) continue;
    const auto iface =
        lab.topo.egress_addr(router.id, router.links.front());
    EXPECT_TRUE(matcher.same_router(router.loopback, iface));
    return;
  }
  GTEST_SKIP();
}

TEST(FractionHopsMatched, Basics) {
  const HopMatcher matcher(nullptr, nullptr);
  const std::vector<Ipv4Addr> reference = {Ipv4Addr(1, 0, 0, 1),
                                           Ipv4Addr(2, 0, 0, 1),
                                           Ipv4Addr(3, 0, 0, 1)};
  const std::vector<Ipv4Addr> candidate = {Ipv4Addr(2, 0, 0, 1),
                                           Ipv4Addr(9, 0, 0, 1)};
  EXPECT_NEAR(fraction_hops_matched(reference, candidate, matcher), 1.0 / 3,
              1e-9);
  EXPECT_DOUBLE_EQ(fraction_hops_matched(reference, reference, matcher), 1.0);
  EXPECT_DOUBLE_EQ(fraction_hops_matched({}, candidate, matcher), 0.0);
}

// --------------------------------------------------------------------------
// AS path comparison
// --------------------------------------------------------------------------

TEST(CompareAsPaths, Exact) {
  const std::vector<Asn> a = {1, 2, 3};
  EXPECT_EQ(compare_as_paths(a, a), AsMatch::kExact);
}

TEST(CompareAsPaths, MissingHops) {
  const std::vector<Asn> direct = {1, 2, 3, 4};
  const std::vector<Asn> missing = {1, 3, 4};
  EXPECT_EQ(compare_as_paths(direct, missing), AsMatch::kMissingHops);
  const std::vector<Asn> empty;
  EXPECT_EQ(compare_as_paths(direct, empty), AsMatch::kMissingHops);
}

TEST(CompareAsPaths, Mismatch) {
  const std::vector<Asn> direct = {1, 2, 3};
  const std::vector<Asn> wrong = {1, 9, 3};
  EXPECT_EQ(compare_as_paths(direct, wrong), AsMatch::kMismatch);
  const std::vector<Asn> out_of_order = {3, 2, 1};
  EXPECT_EQ(compare_as_paths(direct, out_of_order), AsMatch::kMismatch);
}

// --------------------------------------------------------------------------
// Symmetry metrics (§6.2)
// --------------------------------------------------------------------------

TEST(PathSymmetry, SymmetricPathScoresHigh) {
  eval::Lab lab(small_config());
  const HopMatcher matcher(nullptr, nullptr);
  // Perfectly symmetric toy path.
  const auto& host_a = lab.topo.host(0);
  const auto& host_b = lab.topo.host(1);
  const std::vector<Ipv4Addr> forward = {host_a.addr, host_b.addr};
  const std::vector<Ipv4Addr> reverse = {host_b.addr, host_a.addr};
  const auto result = path_symmetry(forward, reverse, matcher, lab.ip2as);
  EXPECT_DOUBLE_EQ(result.router_fraction, 1.0);
  EXPECT_GT(result.as_fraction, 0.0);
}

TEST(PathSymmetry, MeasuredPathsShowAsymmetry) {
  eval::Lab lab(small_config());
  const HopMatcher matcher(nullptr, nullptr);
  const auto vp = lab.topo.vantage_points()[0];
  const auto probe = lab.topo.probe_hosts()[0];
  const auto forward = lab.prober.traceroute(
      vp, lab.topo.host(probe).addr);
  const auto reverse = lab.prober.traceroute(
      probe, lab.topo.host(vp).addr);
  ASSERT_TRUE(forward.reached);
  ASSERT_TRUE(reverse.reached);
  const auto result =
      path_symmetry(forward.responsive_hops(), reverse.responsive_hops(),
                    matcher, lab.ip2as);
  EXPECT_GE(result.router_fraction, 0.0);
  EXPECT_LE(result.router_fraction, 1.0);
  EXPECT_GE(result.as_fraction, 0.0);
  EXPECT_LE(result.as_fraction, 1.0);
}

TEST(EditDistance, KnownValues) {
  const std::vector<Asn> a = {1, 2, 3};
  EXPECT_EQ(as_path_edit_distance(a, a), 0u);
  const std::vector<Asn> sub = {1, 9, 3};
  EXPECT_EQ(as_path_edit_distance(a, sub), 1u);
  const std::vector<Asn> ins = {1, 2, 9, 3};
  EXPECT_EQ(as_path_edit_distance(a, ins), 1u);
  const std::vector<Asn> del = {1, 3};
  EXPECT_EQ(as_path_edit_distance(a, del), 1u);
  const std::vector<Asn> empty;
  EXPECT_EQ(as_path_edit_distance(a, empty), 3u);
  EXPECT_EQ(as_path_edit_distance(empty, empty), 0u);
  const std::vector<Asn> disjoint = {7, 8, 9};
  EXPECT_EQ(as_path_edit_distance(a, disjoint), 3u);
}

TEST(EditDistance, StricterThanOverlap) {
  // Same AS set, different order: overlap-based symmetry says symmetric,
  // edit distance does not — the Appx G.3 definitional gap.
  const std::vector<Asn> forward = {1, 2, 3};
  const std::vector<Asn> reordered = {1, 3, 2};
  EXPECT_GT(as_path_edit_distance(forward, reordered), 0u);
}

TEST(PositionalMatches, FlagsPerPosition) {
  const std::vector<Asn> forward = {1, 2, 3};
  const std::vector<Asn> reverse = {3, 9, 1};
  const auto matches = positional_matches(forward, reverse);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_TRUE(matches[0]);
  EXPECT_FALSE(matches[1]);
  EXPECT_TRUE(matches[2]);
}

// --------------------------------------------------------------------------
// Lab harness
// --------------------------------------------------------------------------

TEST(Lab, AssemblesAndBootstraps) {
  eval::Lab lab(small_config());
  EXPECT_EQ(lab.topo.num_ases(), small_config().num_ases);
  const auto source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 15);
  EXPECT_EQ(lab.atlas.traceroutes(source).size(), 15u);
  EXPECT_GT(lab.atlas.rr_index_size(source), 0u);
  const auto dests = lab.responsive_destinations(true);
  EXPECT_FALSE(dests.empty());
  for (const auto dest : dests) {
    EXPECT_TRUE(lab.topo.host(dest).rr_responsive);
  }
  const auto prefixes = lab.customer_prefixes();
  EXPECT_FALSE(prefixes.empty());
  for (const auto prefix : prefixes) {
    EXPECT_FALSE(lab.topo.prefix(prefix).infrastructure);
  }
}

TEST(Lab, PrecomputeIngressesPopulatesPlans) {
  eval::Lab lab(small_config());
  const auto prefixes = lab.customer_prefixes();
  const std::vector<topology::PrefixId> sample(prefixes.begin(),
                                               prefixes.begin() + 10);
  lab.precompute_ingresses(sample);
  for (const auto prefix : sample) {
    EXPECT_NE(lab.ingress.plan_for(prefix), nullptr);
  }
}

}  // namespace
}  // namespace revtr::eval
