// Assembles a complete Topology from a TopologyConfig.
//
// Pipeline: AS graph -> per-AS router topologies -> inter-AS border links ->
// address plan -> hosts -> vantage points / probe hosts -> lookup maps.
// Everything is driven by the seeded Rng in the config, so identical configs
// produce identical Internets.
#pragma once

#include "topology/config.h"
#include "topology/topology.h"

namespace revtr::topology {

class TopologyBuilder {
 public:
  static Topology build(const TopologyConfig& config);
};

}  // namespace revtr::topology
