#include <gtest/gtest.h>
#include <memory>

#include <algorithm>
#include <set>

#include "eval/harness.h"
#include "util/stats.h"
#include "vpselect/ingress.h"

namespace revtr::vpselect {
namespace {

using net::Ipv4Addr;
using net::Ipv4Prefix;
using topology::HostId;
using topology::PrefixId;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 71;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 30;
  return config;
}

// --------------------------------------------------------------------------
// analyze_reach: direct, double-stamp, loop
// --------------------------------------------------------------------------

const Ipv4Prefix kPrefix(Ipv4Addr(9, 9, 0, 0), 16);

TEST(AnalyzeReach, DirectReach) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(9, 9, 1, 1),
                                       Ipv4Addr(3, 0, 0, 1)};
  const auto analysis = analyze_reach(slots, kPrefix);
  EXPECT_EQ(analysis.via, ReachAnalysis::Via::kDirect);
  EXPECT_EQ(analysis.reach_slot, 2);
  ASSERT_EQ(analysis.candidates.size(), 3u);
  EXPECT_EQ(analysis.candidates.back(), Ipv4Addr(9, 9, 1, 1));
}

TEST(AnalyzeReach, DoubleStamp) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(1, 0, 0, 1)};
  const auto analysis = analyze_reach(slots, kPrefix);
  EXPECT_EQ(analysis.via, ReachAnalysis::Via::kDoubleStamp);
  EXPECT_EQ(analysis.reach_slot, 1);
  EXPECT_EQ(analysis.candidates.size(), 2u);
}

TEST(AnalyzeReach, Loop) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(3, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1)};
  const auto analysis = analyze_reach(slots, kPrefix);
  EXPECT_EQ(analysis.via, ReachAnalysis::Via::kLoop);
  // Candidates: everything before the loop closes (1.*, 2.*, 3.*).
  EXPECT_EQ(analysis.candidates.size(), 3u);
}

TEST(AnalyzeReach, NoReach) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(1, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1)};
  const auto analysis = analyze_reach(slots, kPrefix);
  EXPECT_EQ(analysis.via, ReachAnalysis::Via::kNone);
  EXPECT_EQ(analysis.reach_slot, -1);
  EXPECT_TRUE(analysis.candidates.empty());
}

TEST(AnalyzeReach, DirectBeatsHeuristics) {
  const std::vector<Ipv4Addr> slots = {Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(2, 0, 0, 1),
                                       Ipv4Addr(9, 9, 1, 1)};
  const auto analysis = analyze_reach(slots, kPrefix);
  EXPECT_EQ(analysis.via, ReachAnalysis::Via::kDirect);
}

TEST(AnalyzeReach, HeuristicsCanBeDisabled) {
  const std::vector<Ipv4Addr> doubled = {Ipv4Addr(2, 0, 0, 1),
                                         Ipv4Addr(2, 0, 0, 1)};
  EXPECT_EQ(analyze_reach(doubled, kPrefix, false, false).via,
            ReachAnalysis::Via::kNone);
  const std::vector<Ipv4Addr> looped = {Ipv4Addr(2, 0, 0, 1),
                                        Ipv4Addr(3, 0, 0, 1),
                                        Ipv4Addr(2, 0, 0, 1)};
  EXPECT_EQ(analyze_reach(looped, kPrefix, true, false).via,
            ReachAnalysis::Via::kNone);
}

// --------------------------------------------------------------------------
// End-to-end discovery on the simulated topology
// --------------------------------------------------------------------------

class VpSelectFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { lab_ = std::make_unique<eval::Lab>(small_config()); }
  static void TearDownTestSuite() {
    lab_.reset();
  }
  static std::unique_ptr<eval::Lab> lab_;
};

std::unique_ptr<eval::Lab> VpSelectFixture::lab_;

TEST_F(VpSelectFixture, DiscoveryFindsIngressesForMostPrefixes) {
  std::size_t with_ingress = 0, with_any_vp_in_range = 0, total = 0;
  const auto prefixes = lab_->customer_prefixes();
  for (std::size_t i = 0; i < prefixes.size() && i < 60; ++i) {
    const auto plan_snap = lab_->ingress.discover(
        prefixes[i], lab_->topo.vantage_points(), lab_->rng);
    const auto& plan = *plan_snap;
    ++total;
    with_ingress += plan.has_ingresses();
    const bool in_range = std::any_of(
        plan.vp_info.begin(), plan.vp_info.end(),
        [](const PrefixPlan::VpInfo& info) { return info.in_range(); });
    with_any_vp_in_range += in_range;
    // Every ingress VP list is sorted by distance.
    for (const auto& ingress : plan.ingresses) {
      EXPECT_FALSE(ingress.vps.empty());
      EXPECT_TRUE(std::is_sorted(
          ingress.vps.begin(), ingress.vps.end(),
          [](const VpDistance& a, const VpDistance& b) {
            return a.distance < b.distance ||
                   (a.distance == b.distance && a.vp < b.vp);
          }));
    }
    // Ingresses are ordered by coverage.
    for (std::size_t k = 1; k < plan.ingresses.size(); ++k) {
      EXPECT_GE(plan.ingresses[k - 1].vps.size(),
                plan.ingresses[k].vps.size());
    }
  }
  ASSERT_GT(total, 0u);
  // The vast majority of prefixes with in-range VPs get ingresses (97.7%
  // in the paper).
  EXPECT_GT(with_ingress, with_any_vp_in_range * 7 / 10);
}

TEST_F(VpSelectFixture, EachVpCoveredByAtMostOneIngress) {
  const auto prefixes = lab_->customer_prefixes();
  const auto plan_snap = lab_->ingress.discover(
      prefixes[3], lab_->topo.vantage_points(), lab_->rng);
  const auto& plan = *plan_snap;
  std::set<HostId> seen;
  for (const auto& ingress : plan.ingresses) {
    for (const auto& vp : ingress.vps) {
      EXPECT_TRUE(seen.insert(vp.vp).second)
          << "VP assigned to two ingresses";
    }
  }
}

TEST_F(VpSelectFixture, AttemptPlanRoundRobinsOverIngresses) {
  PrefixPlan plan;
  plan.prefix = 0;
  Ingress a;
  a.addr = Ipv4Addr(1, 1, 1, 1);
  a.vps = {{10, 2}, {11, 4}};
  Ingress b;
  b.addr = Ipv4Addr(2, 2, 2, 2);
  b.vps = {{20, 3}};
  plan.ingresses = {a, b};
  const auto attempts = attempt_plan(plan, 5);
  ASSERT_EQ(attempts.size(), 3u);
  // First round: closest VP of each ingress, in coverage order.
  EXPECT_EQ(attempts[0].vp, 10u);
  EXPECT_EQ(attempts[0].expected_ingress, a.addr);
  EXPECT_EQ(attempts[1].vp, 20u);
  EXPECT_EQ(attempts[1].expected_ingress, b.addr);
  // Second round: backup VP of ingress a.
  EXPECT_EQ(attempts[2].vp, 11u);
  EXPECT_EQ(attempts[2].ingress_rank, 0u);
}

TEST_F(VpSelectFixture, AttemptPlanFallbackWhenNoIngress) {
  PrefixPlan plan;
  plan.vp_info = {{10, 3, 5}, {11, 9, 9}, {12, 2, 2}, {13, -1, -1}};
  const auto attempts = attempt_plan(plan, 5);
  ASSERT_EQ(attempts.size(), 2u);  // VP 11 (mean 9) is out of range; 13 too.
  EXPECT_EQ(attempts[0].vp, 12u);  // Mean distance 2.
  EXPECT_EQ(attempts[1].vp, 10u);  // Mean distance 4.
  EXPECT_TRUE(attempts[0].expected_ingress.is_unspecified());
}

TEST_F(VpSelectFixture, Revtr1OrderPrefersInRangeVpsButIgnoresDistance) {
  PrefixPlan plan;
  plan.vp_info = {{10, -1, -1}, {11, 6, 6}, {12, 2, 4}, {13, 3, -1}};
  const auto order = revtr1_vp_order(plan);
  ASSERT_EQ(order.size(), 4u);
  // Set cover ranks by destinations covered, not proximity: both VPs in
  // range of two destinations come first (id order), then the single-dest
  // one, then the out-of-range one.
  EXPECT_EQ(order[0], 11u);
  EXPECT_EQ(order[1], 12u);
  EXPECT_EQ(order[2], 13u);
  EXPECT_EQ(order[3], 10u);
}

TEST_F(VpSelectFixture, GlobalOrderAggregatesAcrossPrefixes) {
  PrefixPlan p1;
  p1.vp_info = {{10, 3, 3}, {11, -1, -1}};
  PrefixPlan p2;
  p2.vp_info = {{10, 2, 2}, {11, 4, 4}};
  const PrefixPlan* plans[] = {&p1, &p2};
  const auto order = global_vp_order(plans);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 10u);  // In range of 2 prefixes vs 1.
}

TEST_F(VpSelectFixture, OptimalPicksClosest) {
  PrefixPlan plan;
  plan.vp_info = {{10, 5, 5}, {11, 2, 2}, {12, -1, -1}};
  const auto best = optimal_vp(plan);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->vp, 11u);
  PrefixPlan empty;
  empty.vp_info = {{12, -1, -1}};
  EXPECT_FALSE(optimal_vp(empty));
}

TEST_F(VpSelectFixture, DiscoveredDistancesAgreeWithTopologyScale) {
  // Sanity: distances are within [1, 9] and colo VPs are often close.
  const auto prefixes = lab_->customer_prefixes();
  util::Fraction close;
  for (std::size_t i = 0; i < prefixes.size() && i < 40; ++i) {
    const auto plan_snap = lab_->ingress.discover(
        prefixes[i], lab_->topo.vantage_points(), lab_->rng);
    const auto& plan = *plan_snap;
    for (const auto& info : plan.vp_info) {
      if (info.dist_d1 >= 0) {
        EXPECT_GE(info.dist_d1, 1);
        EXPECT_LE(info.dist_d1, 9);
        close.tally(info.dist_d1 <= 4);
      }
    }
  }
  // Insight 1.7: a decent share of reachable destinations are close.
  EXPECT_GT(close.value(), 0.1);
}

// Degenerate survey inputs: no vantage points at all, and a network that
// drops every probe. Discovery must produce an empty-but-usable plan (no
// ingresses, empty fallback, empty attempt list, no optimal VP) rather than
// crash or fabricate coverage.
TEST_F(VpSelectFixture, DiscoveryWithZeroResponsiveVpsYieldsEmptyPlan) {
  const auto prefixes = lab_->customer_prefixes();

  // No VPs provided.
  {
    const auto plan_snap = lab_->ingress.discover(prefixes[5], {}, lab_->rng);
    const auto& plan = *plan_snap;
    EXPECT_FALSE(plan.has_ingresses());
    EXPECT_TRUE(plan.vp_info.empty());
    EXPECT_TRUE(plan.fallback_ranking().empty());
    EXPECT_TRUE(attempt_plan(plan).empty());
    EXPECT_FALSE(optimal_vp(plan));
    EXPECT_TRUE(revtr1_vp_order(plan).empty());
  }

  // VPs exist but every probe is lost: nobody responds, nobody is in range.
  {
    lab_->network.set_loss_rate(1.0);
    const auto plan_snap = lab_->ingress.discover(
        prefixes[6], lab_->topo.vantage_points(), lab_->rng);
    const auto& plan = *plan_snap;
    lab_->network.set_loss_rate(0.0);
    EXPECT_FALSE(plan.has_ingresses());
    for (const auto& info : plan.vp_info) {
      EXPECT_FALSE(info.in_range());
    }
    EXPECT_TRUE(plan.fallback_ranking().empty());
    EXPECT_TRUE(attempt_plan(plan).empty());
    EXPECT_FALSE(optimal_vp(plan));
  }
}

}  // namespace
}  // namespace revtr::vpselect
