// Byte-level codec: Packet <-> IPv4 header + ICMP message.
//
// The simulator works on the structured Packet, but this codec proves the
// model is faithful to the wire: a Packet round-trips through the exact
// on-the-wire representation (IPv4 header with options padded to a 4-byte
// boundary, ICMP echo / time-exceeded with checksums). It also backs the
// encode/decode microbenchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace revtr::net {

// Serializes the packet to IPv4 wire format. Checksums are computed.
std::vector<std::uint8_t> encode_packet(const Packet& packet);

// Parses a wire buffer back into a Packet. Returns nullopt on malformed
// input (bad version/IHL, truncated options, checksum mismatch).
std::optional<Packet> decode_packet(std::span<const std::uint8_t> bytes);

}  // namespace revtr::net
