#include "probing/transport.h"

#include <utility>

namespace revtr::probing {

ProbeReply execute_spec(Prober& prober, const ProbeSpec& spec) {
  ProbeReply reply;
  switch (spec.type) {
    case ProbeType::kPing: {
      const auto result = prober.ping(spec.from, spec.target);
      reply.responded = result.responded;
      reply.duration_us = result.duration_us;
      reply.packets = 1;
      break;
    }
    case ProbeType::kRecordRoute:
    case ProbeType::kSpoofedRecordRoute: {
      const auto result = prober.rr_ping(spec.from, spec.target, spec.spoof_as);
      reply.responded = result.responded;
      reply.slots = result.slots;
      reply.duration_us = result.duration_us;
      reply.packets = 1;
      break;
    }
    case ProbeType::kTimestamp:
    case ProbeType::kSpoofedTimestamp: {
      const auto result =
          prober.ts_ping(spec.from, spec.target, spec.prespec, spec.spoof_as);
      reply.responded = result.responded;
      reply.stamped = result.stamped;
      reply.duration_us = result.duration_us;
      reply.packets = 1;
      break;
    }
    case ProbeType::kTraceroute: {
      auto result = prober.traceroute(spec.from, spec.target);
      reply.responded = result.reached;
      reply.duration_us = result.duration_us;
      // One wire packet per TTL tried (the Prober charges exactly one
      // traceroute packet per recorded hop).
      reply.packets = result.hops.size();
      reply.traceroute = std::move(result);
      break;
    }
  }
  return reply;
}

}  // namespace revtr::probing
