#!/bin/sh
# Build, test, and regenerate every paper table/figure.
#
# check.sh is the correctness gate: -Werror build plus ctest under the
# default, ASan, and UBSan presets (and TSan with REVTR_CHECK_TSAN=1),
# including the revtr_mc model-checker sweep and the layering analyzer.
# REVTR_QUICK=1 downgrades it to the fast gate (lint + layering + unit
# tests) for inner-loop runs.
set -e
cd "$(dirname "$0")/.."
if [ "${REVTR_QUICK:-0}" = "1" ]; then
    scripts/check.sh --quick
else
    scripts/check.sh
fi
for b in build/bench/*; do [ -x "$b" ] && "$b"; done
for e in build/examples/*; do [ -x "$e" ] && "$e"; done
