#include <gtest/gtest.h>
#include <memory>

#include <algorithm>

#include "atlas/atlas.h"
#include "eval/harness.h"

namespace revtr::atlas {
namespace {

using net::Ipv4Addr;
using topology::HostId;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 61;
  config.num_ases = 150;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 60;
  return config;
}

class AtlasFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = std::make_unique<eval::Lab>(small_config());
    source_ = lab_->topo.vantage_points()[0];
    lab_->atlas.build(source_, 30, lab_->rng);
  }
  static void TearDownTestSuite() {
    lab_.reset();
  }
  static std::unique_ptr<eval::Lab> lab_;
  static HostId source_;
};

std::unique_ptr<eval::Lab> AtlasFixture::lab_;
HostId AtlasFixture::source_ = topology::kInvalidId;

TEST_F(AtlasFixture, BuildProducesTraceroutes) {
  const auto& trs = lab_->atlas.traceroutes(source_);
  EXPECT_EQ(trs.size(), 30u);
  std::size_t reached = 0;
  for (const auto& tr : trs) {
    EXPECT_FALSE(tr.hops.empty());
    reached += tr.reached_source;
    if (tr.reached_source) {
      EXPECT_EQ(tr.hops.back(), lab_->topo.host(source_).addr);
    }
  }
  EXPECT_GT(reached, 20u);  // Sources are always responsive.
}

TEST_F(AtlasFixture, ExactIntersectionAndSuffix) {
  const auto& trs = lab_->atlas.traceroutes(source_);
  // Pick a mid-path hop of some traceroute and intersect on it.
  for (const auto& tr : trs) {
    if (tr.hops.size() < 3) continue;
    const Ipv4Addr mid = tr.hops[tr.hops.size() / 2];
    const auto hit = lab_->atlas.intersect(source_, mid, false);
    ASSERT_TRUE(hit);
    const auto suffix = lab_->atlas.suffix_after(source_, *hit);
    ASSERT_FALSE(suffix.empty());
    // The suffix ends at the source when the traceroute reached it.
    const auto& hit_tr = trs[hit->traceroute_index];
    if (hit_tr.reached_source) {
      EXPECT_EQ(suffix.back(), lab_->topo.host(source_).addr);
    }
    // The suffix must not contain the intersected address itself.
    EXPECT_EQ(std::find(suffix.begin(), suffix.end(),
                        hit_tr.hops[hit->hop_index]),
              suffix.end());
    return;
  }
  FAIL() << "no traceroute with 3+ hops";
}

TEST_F(AtlasFixture, NoIntersectionForUnknownAddress) {
  EXPECT_FALSE(lab_->atlas.intersect(source_, Ipv4Addr(203, 0, 113, 7),
                                     true));
  EXPECT_FALSE(lab_->atlas.intersect(lab_->topo.vantage_points()[1],
                                     Ipv4Addr(1, 0, 0, 20), false));
}

TEST_F(AtlasFixture, RrIndexAddsIntersections) {
  lab_->atlas.build_rr_alias_index(source_);
  EXPECT_GT(lab_->atlas.rr_index_size(source_), 0u);

  // Find an address known only through the RR index.
  // (Every rr_index key that is not a traceroute hop qualifies: probing it
  // without the index finds nothing, with the index it intersects.)
  const auto& trs = lab_->atlas.traceroutes(source_);
  std::unordered_set<Ipv4Addr> hop_addrs;
  for (const auto& tr : trs) {
    for (const auto hop : tr.hops) hop_addrs.insert(hop);
  }
  // Probe candidate addresses: RR pings to hops reveal egress interfaces;
  // scan atlas router links for addresses that intersect via RR only.
  std::size_t rr_only = 0;
  for (const auto& link : lab_->topo.links()) {
    for (const auto addr : {link.addr_a, link.addr_b}) {
      if (hop_addrs.contains(addr)) continue;
      if (lab_->atlas.intersect(source_, addr, true)) ++rr_only;
    }
  }
  EXPECT_GT(rr_only, 0u) << "RR index added no new intersection points";
}

TEST_F(AtlasFixture, AliasIntersectionFindsAliasedHops) {
  const auto truth = alias::ground_truth_aliases(lab_->topo);
  const auto& trs = lab_->atlas.traceroutes(source_);
  for (const auto& tr : trs) {
    for (const auto hop : tr.hops) {
      const auto owner = lab_->topo.interface_at(hop);
      if (!owner) continue;
      const auto loopback = lab_->topo.router(owner->router).loopback;
      if (loopback == hop) continue;
      // The loopback is an alias of a traceroute hop: exact intersection
      // misses it, alias-based intersection finds it.
      if (!lab_->atlas.intersect(source_, loopback, false)) {
        EXPECT_TRUE(
            lab_->atlas.intersect_with_aliases(source_, loopback, truth));
        return;
      }
    }
  }
  GTEST_SKIP() << "all loopbacks were direct hops";
}

TEST_F(AtlasFixture, TouchMarksUsefulAndReportsAge) {
  const auto& trs = lab_->atlas.traceroutes(source_);
  ASSERT_FALSE(trs.empty());
  const Ipv4Addr hop = trs[0].hops[0];
  const auto hit = lab_->atlas.intersect(source_, hop, false);
  ASSERT_TRUE(hit);
  const auto age = lab_->atlas.touch(source_, *hit,
                                     3 * util::SimClock::kHour);
  EXPECT_EQ(age, 3 * util::SimClock::kHour);
  // `trs` is a snapshot taken before touch(); re-fetch to see the flag.
  EXPECT_TRUE(lab_->atlas.traceroutes(source_)[hit->traceroute_index].useful);
}

TEST_F(AtlasFixture, RefreshKeepsUsefulProbes) {
  eval::Lab lab(small_config());
  const HostId source = lab.topo.vantage_points()[2];
  lab.atlas.build(source, 20, lab.rng, 0);
  // Mark a couple of traceroutes useful.
  const auto& before = lab.atlas.traceroutes(source);
  std::vector<HostId> useful_probes;
  for (std::size_t i = 0; i < 3 && i < before.size(); ++i) {
    lab.atlas.touch(source, Intersection{i, 0}, 0);
    useful_probes.push_back(before[i].probe);
  }
  lab.atlas.refresh(source, lab.rng, util::SimClock::kDay);
  const auto& after = lab.atlas.traceroutes(source);
  EXPECT_EQ(after.size(), 20u);
  for (const HostId probe : useful_probes) {
    const bool kept = std::any_of(
        after.begin(), after.end(),
        [&](const AtlasTraceroute& tr) { return tr.probe == probe; });
    EXPECT_TRUE(kept) << "useful probe dropped";
  }
  for (const auto& tr : after) {
    EXPECT_EQ(tr.measured_at, util::SimClock::kDay);  // Re-measured.
    EXPECT_FALSE(tr.useful);                          // Flag reset.
  }
}

TEST(GreedySelection, PrefersHighCoverage) {
  // Three synthetic traceroutes: one long unique path, one subset, one
  // disjoint short one. Greedy must pick the long one first.
  AtlasTraceroute a;
  a.hops = {Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2), Ipv4Addr(1, 0, 0, 3),
            Ipv4Addr(1, 0, 0, 4)};
  AtlasTraceroute b;
  b.hops = {Ipv4Addr(1, 0, 0, 3), Ipv4Addr(1, 0, 0, 4)};
  AtlasTraceroute c;
  c.hops = {Ipv4Addr(2, 0, 0, 1), Ipv4Addr(2, 0, 0, 2)};
  const std::vector<AtlasTraceroute> pool = {b, a, c};
  const auto selected = greedy_optimal_selection(pool, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 1u);  // `a` covers the most weighted addresses.
  EXPECT_EQ(selected[1], 2u);  // `c` adds new coverage; `b` adds none.
}

TEST(GreedySelection, ExternalWeightPoolChangesChoice) {
  // Two candidate traceroutes; the weight pool only values addresses on
  // the second, so the oracle variant must pick it first.
  AtlasTraceroute a;
  a.hops = {Ipv4Addr(1, 0, 0, 1), Ipv4Addr(1, 0, 0, 2), Ipv4Addr(1, 0, 0, 3)};
  AtlasTraceroute b;
  b.hops = {Ipv4Addr(2, 0, 0, 1), Ipv4Addr(2, 0, 0, 2)};
  AtlasTraceroute wants_b;
  wants_b.hops = {Ipv4Addr(9, 0, 0, 9), Ipv4Addr(2, 0, 0, 1),
                  Ipv4Addr(2, 0, 0, 2)};
  const std::vector<AtlasTraceroute> pool = {a, b};
  const std::vector<AtlasTraceroute> weights = {wants_b};
  const auto selected = greedy_optimal_selection(pool, 1, weights);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 1u);
  // Self-weighted greedy prefers the longer traceroute instead.
  const auto self_selected = greedy_optimal_selection(pool, 1);
  ASSERT_EQ(self_selected.size(), 1u);
  EXPECT_EQ(self_selected[0], 0u);
}

TEST(GreedySelection, CapsAtPoolSize) {
  AtlasTraceroute a;
  a.hops = {Ipv4Addr(1, 0, 0, 1)};
  const std::vector<AtlasTraceroute> pool = {a};
  EXPECT_EQ(greedy_optimal_selection(pool, 10).size(), 1u);
}

TEST(IntersectedFraction, WalksFromFarEnd) {
  const std::vector<Ipv4Addr> path = {Ipv4Addr(1, 0, 0, 1),
                                      Ipv4Addr(1, 0, 0, 2),
                                      Ipv4Addr(1, 0, 0, 3),
                                      Ipv4Addr(1, 0, 0, 4)};
  std::unordered_set<Ipv4Addr> covered = {Ipv4Addr(1, 0, 0, 3)};
  // Hops 3 and 4 are short-circuited: 2 of 4.
  EXPECT_DOUBLE_EQ(intersected_fraction(path, covered), 0.5);
  covered.insert(Ipv4Addr(1, 0, 0, 1));
  EXPECT_DOUBLE_EQ(intersected_fraction(path, covered), 1.0);
  EXPECT_DOUBLE_EQ(intersected_fraction(path, {}), 0.0);
  EXPECT_DOUBLE_EQ(intersected_fraction({}, covered), 0.0);
}

}  // namespace
}  // namespace revtr::atlas
